// Chaos suite of the distributed sweep layer: every distributed fault
// site (serve/fault), alone and mixed, against a real coordinator +
// worker-loop deployment. The contract after every scenario:
//  * the run completes (via reassignment, late results, or graceful
//    degradation to local execution),
//  * DistStats::reconciles() — every assignment reached exactly one
//    terminal state, every completion has exactly one source,
//  * the assembled grids are BITWISE identical to the in-process
//    analyzer — faults may cost time, never values.
// Plus resume-from-journal under a simulated coordinator crash, and the
// same crossed with worker chaos.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/sweep_engine.hpp"
#include "core/sweep_plan.hpp"
#include "dist/coordinator.hpp"
#include "dist/job.hpp"
#include "dist/worker.hpp"
#include "serve/fault.hpp"

namespace redcane::dist {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

struct ChaosRun {
  CoordinatorResult result;
  JobGrids grids;
  std::vector<WorkerStats> workers;
};

/// Runs the quick standard job through a coordinator + `n_workers` worker
/// loops over a unix socket, under whatever fault plan the caller armed.
/// Worker loops are threads here (processes in production — the protocol
/// and the fault sites cannot tell the difference).
ChaosRun run_chaos(const char* sock_name, int n_workers,
                   CoordinatorConfig cfg,
                   std::int64_t heartbeat_interval_ms = 50) {
  StandardJob job = make_standard_job("quick");
  cfg.addr = "unix:" + temp_path(sock_name);
  cfg.job_hash = job.job_hash;

  core::SweepEngine local_engine(*job.model, job.dataset.test_x, job.dataset.test_y,
                                 job_engine_config(job, /*threads=*/1));
  Coordinator coordinator(cfg, job.shards,
                          [&local_engine](const core::SweepShard& s) {
                            return core::run_shard(local_engine, s);
                          });
  std::string error;
  EXPECT_TRUE(coordinator.listen(&error)) << error;

  ChaosRun run;
  run.workers.resize(static_cast<std::size_t>(n_workers));
  std::vector<std::thread> threads;
  for (int i = 0; i < n_workers; ++i) {
    threads.emplace_back([&run, &coordinator, i, heartbeat_interval_ms] {
      StandardJob wjob = make_standard_job("quick");
      core::SweepEngine engine(*wjob.model, wjob.dataset.test_x, wjob.dataset.test_y,
                               job_engine_config(wjob, /*threads=*/1));
      WorkerConfig wc;
      wc.addr = coordinator.bound_addr();
      wc.name = "w" + std::to_string(i);
      wc.job_hash = wjob.job_hash;
      wc.heartbeat_interval_ms = heartbeat_interval_ms;
      run.workers[static_cast<std::size_t>(i)] = run_worker(engine, wc);
    });
  }
  run.result = coordinator.run();
  for (std::thread& t : threads) t.join();
  if (run.result.complete) run.grids = assemble_job(job, run.result.outcomes);
  return run;
}

/// The post-chaos contract every scenario must satisfy.
void expect_contract(const ChaosRun& run) {
  ASSERT_TRUE(run.result.complete) << run.result.error;
  const DistStats& s = run.result.stats;
  EXPECT_TRUE(s.reconciles())
      << "assigned=" << s.assigned << " ok=" << s.result_ok
      << " dup=" << s.result_dup << " stolen=" << s.stolen << " lost=" << s.lost
      << " cancelled=" << s.cancelled << " requeues=" << s.requeues
      << " failed=" << s.failed_permanent << " dropped=" << s.dropped_completed;
  // Completion-source conservation: every shard exactly once.
  EXPECT_EQ(s.journal_resumed + s.results_accepted + s.local_completed,
            s.shards_total);

  StandardJob ref_job = make_standard_job("quick");
  const JobGrids reference = run_job_in_process(ref_job);
  EXPECT_TRUE(grids_identical(run.grids, reference))
      << "chaos changed grid values — determinism contract broken";
}

TEST(DistChaos, KillOneWorkerMidRun) {
  serve::fault::FaultConfig fc;
  fc.kill_worker_after = 1;  // w0 exits after its first completed shard...
  fc.kill_worker_name = "w0";  // ...without sending the second result.
  serve::fault::ScopedFaultPlan plan(fc);

  CoordinatorConfig cfg;
  cfg.heartbeat_deadline_ms = 300;
  const ChaosRun run = run_chaos("chaos_kill_one.sock", 3, cfg);
  expect_contract(run);
  EXPECT_TRUE(run.workers[0].killed_by_fault);
  // The killed worker's in-flight shard was recovered one way or another.
  EXPECT_GE(run.result.stats.lost + run.result.stats.stolen, 1);
  EXPECT_EQ(plan.plan().counters().worker_kills, 1);
}

TEST(DistChaos, KillEveryWorkerDegradesToLocal) {
  serve::fault::FaultConfig fc;
  fc.kill_worker_after = 0;  // Every worker dies on its first shard.
  serve::fault::ScopedFaultPlan plan(fc);

  CoordinatorConfig cfg;
  cfg.heartbeat_deadline_ms = 300;
  const ChaosRun run = run_chaos("chaos_kill_all.sock", 2, cfg);
  expect_contract(run);
  EXPECT_TRUE(run.result.stats.degraded);
  EXPECT_GT(run.result.stats.local_completed, 0);
  for (const WorkerStats& w : run.workers) EXPECT_TRUE(w.killed_by_fault);
}

TEST(DistChaos, HeartbeatLossWithSlowResultsForcesStealsButAcceptsLateWork) {
  serve::fault::FaultConfig fc;
  fc.heartbeat_drop_prob = 1.0;  // Total heartbeat loss...
  fc.sock_stall_prob = 1.0;      // ...and every result delayed past the
  fc.sock_stall_us = 250'000;    // liveness deadline: every assignment is
  serve::fault::ScopedFaultPlan plan(fc);  // stolen, then lands late.

  CoordinatorConfig cfg;
  cfg.heartbeat_deadline_ms = 100;
  cfg.backoff.base_us = 1'000;  // Requeue fast; the test bounds wall time.
  cfg.backoff.budget = 50;      // Steals are routine here, not failures.
  const ChaosRun run = run_chaos("chaos_hb.sock", 2, cfg);
  expect_contract(run);
  EXPECT_GT(run.result.stats.stolen, 0);
  // The anti-livelock path did real work: stolen assignments delivered.
  EXPECT_GT(run.result.stats.late_results + run.result.stats.result_dup, 0);
  EXPECT_GT(plan.plan().counters().heartbeats_dropped, 0);
  EXPECT_GT(plan.plan().counters().socket_stalls, 0);
}

TEST(DistChaos, CorruptedResultFramesAreFatalToTheConnectionNotTheRun) {
  serve::fault::FaultConfig fc;
  fc.frame_corrupt_prob = 0.3;
  serve::fault::ScopedFaultPlan plan(fc);

  CoordinatorConfig cfg;
  cfg.heartbeat_deadline_ms = 500;
  cfg.backoff.base_us = 1'000;
  cfg.backoff.budget = 50;  // Corruption costs retries, never the run.
  const ChaosRun run = run_chaos("chaos_frame.sock", 3, cfg);
  expect_contract(run);
  EXPECT_GT(run.result.stats.corrupt_frames, 0);
  EXPECT_GT(plan.plan().counters().frames_corrupted, 0);
  // A corrupt frame costs the worker its connection and the shard re-runs.
  EXPECT_GE(run.result.stats.lost, run.result.stats.corrupt_frames);
}

TEST(DistChaos, StalledSocketsDelayButDoNotCorrupt) {
  serve::fault::FaultConfig fc;
  fc.sock_stall_prob = 0.5;
  fc.sock_stall_us = 30'000;  // Under the deadline: stalls alone, no steals.
  serve::fault::ScopedFaultPlan plan(fc);

  CoordinatorConfig cfg;
  cfg.heartbeat_deadline_ms = 1000;
  const ChaosRun run = run_chaos("chaos_stall.sock", 2, cfg);
  expect_contract(run);
  EXPECT_GT(plan.plan().counters().socket_stalls, 0);
}

TEST(DistChaos, CombinedFaultMix) {
  serve::fault::FaultConfig fc;
  fc.kill_worker_after = 2;
  fc.kill_worker_name = "w1";
  fc.heartbeat_drop_prob = 0.5;
  fc.frame_corrupt_prob = 0.1;
  fc.sock_stall_prob = 0.3;
  fc.sock_stall_us = 40'000;
  serve::fault::ScopedFaultPlan plan(fc);

  CoordinatorConfig cfg;
  cfg.heartbeat_deadline_ms = 250;
  cfg.backoff.base_us = 1'000;
  cfg.backoff.budget = 50;
  const ChaosRun run = run_chaos("chaos_mix.sock", 3, cfg);
  expect_contract(run);
}

TEST(DistChaos, CoordinatorCrashThenResumeUnderWorkerChaos) {
  const std::string journal = temp_path("chaos_resume.rdj");
  std::remove(journal.c_str());

  // Phase 1: coordinator "crashes" after 4 journal appends while workers
  // are also stalling.
  {
    serve::fault::FaultConfig fc;
    fc.coord_crash_after = 4;
    fc.sock_stall_prob = 0.3;
    fc.sock_stall_us = 20'000;
    serve::fault::ScopedFaultPlan plan(fc);

    CoordinatorConfig cfg;
    cfg.journal_path = journal;
    const ChaosRun run = run_chaos("chaos_resume1.sock", 2, cfg);
    EXPECT_FALSE(run.result.complete);
    EXPECT_GE(run.result.journal.records_appended, 4);
  }

  // Phase 2: resume from the journal under a different fault mix; the
  // journaled shards must not re-run, and the final grids must be bitwise
  // those of an uninterrupted run.
  {
    serve::fault::FaultConfig fc;
    fc.frame_corrupt_prob = 0.1;
    serve::fault::ScopedFaultPlan plan(fc);

    CoordinatorConfig cfg;
    cfg.journal_path = journal;
    cfg.backoff.base_us = 1'000;
    cfg.backoff.budget = 50;
    const ChaosRun run = run_chaos("chaos_resume2.sock", 2, cfg);
    expect_contract(run);
    EXPECT_GE(run.result.stats.journal_resumed, 4);
    EXPECT_LE(run.result.stats.results_accepted + run.result.stats.local_completed,
              run.result.stats.shards_total - 4);
  }
}

}  // namespace
}  // namespace redcane::dist
