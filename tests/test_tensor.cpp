#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

namespace redcane {
namespace {

TEST(Tensor, ZeroInitialized) {
  const Tensor t(Shape{2, 3});
  EXPECT_EQ(t.numel(), 6);
  for (float v : t.data()) EXPECT_EQ(v, 0.0F);
}

TEST(Tensor, FillConstructor) {
  const Tensor t(Shape{4}, 2.5F);
  for (float v : t.data()) EXPECT_EQ(v, 2.5F);
}

TEST(Tensor, FromValues) {
  const Tensor t(Shape{2, 2}, {1.0F, 2.0F, 3.0F, 4.0F});
  EXPECT_EQ(t(0, 0), 1.0F);
  EXPECT_EQ(t(0, 1), 2.0F);
  EXPECT_EQ(t(1, 0), 3.0F);
  EXPECT_EQ(t(1, 1), 4.0F);
}

TEST(Tensor, MultiIndexWriteReads) {
  Tensor t(Shape{2, 3, 4});
  t(1, 2, 3) = 9.0F;
  EXPECT_EQ(t.at(1 * 12 + 2 * 4 + 3), 9.0F);
}

TEST(Tensor, Rank5Access) {
  Tensor t(Shape{2, 2, 2, 2, 2});
  t(1, 0, 1, 0, 1) = 3.0F;
  EXPECT_EQ(t(1, 0, 1, 0, 1), 3.0F);
  EXPECT_EQ(t.at(16 + 4 + 1), 3.0F);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t(Shape{2, 3});
  for (std::int64_t i = 0; i < 6; ++i) t.at(i) = static_cast<float>(i);
  const Tensor r = t.reshaped(Shape{3, 2});
  EXPECT_EQ(r.shape(), (Shape{3, 2}));
  for (std::int64_t i = 0; i < 6; ++i) EXPECT_EQ(r.at(i), static_cast<float>(i));
}

TEST(Tensor, FillOverwrites) {
  Tensor t(Shape{3}, 1.0F);
  t.fill(-2.0F);
  for (float v : t.data()) EXPECT_EQ(v, -2.0F);
}

TEST(Tensor, EmptyDefault) {
  const Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.numel(), 0);
}

TEST(Tensor, ValueSemanticsCopyIsDeep) {
  Tensor a(Shape{2}, 1.0F);
  Tensor b = a;
  b.at(0) = 5.0F;
  EXPECT_EQ(a.at(0), 1.0F);
  EXPECT_EQ(b.at(0), 5.0F);
}

TEST(Tensor, ToStringMentionsShape) {
  const Tensor t(Shape{2, 3});
  EXPECT_EQ(t.to_string(), "Tensor[2, 3] (6 elements)");
}

}  // namespace
}  // namespace redcane
