// Checkpoint (de)serialization contracts (src/capsnet/serialize.cpp):
//  * save_params/load_params round-trips every parameter bit-exactly, for
//    both architectures, so a served model computes exactly what the
//    designed model computed;
//  * loading rejects missing, truncated, magic-corrupted and
//    layout-mismatched files instead of silently mangling weights.
#include "capsnet/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "capsnet/capsnet_model.hpp"
#include "capsnet/deepcaps_model.hpp"
#include "capsnet/trainer.hpp"
#include "data/synthetic.hpp"

namespace redcane::capsnet {
namespace {

capsnet::CapsNetConfig small_capsnet_config() {
  CapsNetConfig cfg;
  cfg.input_hw = 14;
  cfg.conv1_kernel = 5;
  cfg.conv1_channels = 8;
  cfg.primary_kernel = 5;
  cfg.primary_stride = 2;
  cfg.primary_types = 2;
  cfg.primary_dim = 4;
  cfg.class_dim = 4;
  return cfg;
}

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

/// Saves `a`, loads into `b` (same architecture, different init), and
/// checks params and a forward pass match bitwise.
void check_round_trip(CapsModel& a, CapsModel& b, const Tensor& probe,
                      const std::string& path) {
  ASSERT_TRUE(save_params(a, path));
  ASSERT_TRUE(load_params(b, path));

  const std::vector<nn::Param*> pa = a.params();
  const std::vector<nn::Param*> pb = b.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i]->value.shape(), pb[i]->value.shape()) << pa[i]->name;
    ASSERT_EQ(0, std::memcmp(pa[i]->value.data().data(), pb[i]->value.data().data(),
                             static_cast<std::size_t>(pa[i]->value.numel()) *
                                 sizeof(float)))
        << pa[i]->name;
  }

  const Tensor va = a.infer(probe);
  const Tensor vb = b.infer(probe);
  ASSERT_EQ(va.shape(), vb.shape());
  ASSERT_EQ(0, std::memcmp(va.data().data(), vb.data().data(),
                           static_cast<std::size_t>(va.numel()) * sizeof(float)));
}

Tensor probe_for(const CapsModel& model) {
  const Shape in = model.input_shape();
  data::SyntheticSpec s;
  s.kind = in.dim(2) == 1 ? data::DatasetKind::kMnist : data::DatasetKind::kCifar10;
  s.hw = in.dim(0);
  s.channels = in.dim(2);
  s.train_count = 4;
  s.test_count = 4;
  s.seed = 11;
  return data::make_synthetic(s).test_x;
}

TEST(Serialize, CapsNetRoundTripIsBitExact) {
  Rng rng_a(1);
  Rng rng_b(2);  // Different init: loading must overwrite every weight.
  CapsNetModel a(small_capsnet_config(), rng_a);
  CapsNetModel b(small_capsnet_config(), rng_b);
  check_round_trip(a, b, probe_for(a), temp_path("capsnet.rdcn"));
}

TEST(Serialize, DeepCapsRoundTripIsBitExact) {
  DeepCapsConfig cfg = DeepCapsConfig::tiny();
  cfg.input_hw = 8;
  Rng rng_a(3);
  Rng rng_b(4);
  DeepCapsModel a(cfg, rng_a);
  DeepCapsModel b(cfg, rng_b);
  check_round_trip(a, b, probe_for(a), temp_path("deepcaps.rdcn"));
}

TEST(Serialize, LoadRejectsMissingFile) {
  Rng rng(5);
  CapsNetModel model(small_capsnet_config(), rng);
  EXPECT_FALSE(load_params(model, temp_path("does_not_exist.rdcn")));
}

TEST(Serialize, LoadRejectsTruncatedFile) {
  Rng rng(6);
  CapsNetModel model(small_capsnet_config(), rng);
  const std::string path = temp_path("truncated.rdcn");
  ASSERT_TRUE(save_params(model, path));

  // Chop the file mid-parameter-data.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<char> bytes(static_cast<std::size_t>(size));
  ASSERT_EQ(bytes.size(), std::fread(bytes.data(), 1, bytes.size(), f));
  std::fclose(f);
  f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(bytes.size() / 2, std::fwrite(bytes.data(), 1, bytes.size() / 2, f));
  std::fclose(f);

  EXPECT_FALSE(load_params(model, path));
}

TEST(Serialize, LoadRejectsCorruptedMagic) {
  Rng rng(7);
  CapsNetModel model(small_capsnet_config(), rng);
  const std::string path = temp_path("badmagic.rdcn");
  ASSERT_TRUE(save_params(model, path));
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(1U, std::fwrite("X", 1, 1, f));  // First magic byte.
  std::fclose(f);
  EXPECT_FALSE(load_params(model, path));
}

TEST(Serialize, LoadRejectsSingleByteFlipInWeightData) {
  Rng rng(9);
  CapsNetModel model(small_capsnet_config(), rng);
  const std::string path = temp_path("bitflip.rdcn");
  ASSERT_TRUE(save_params(model, path));

  // Flip one bit deep inside the weight payload: names, shapes and counts
  // all still parse, so only the trailing checksum can catch it.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(0, std::fseek(f, 0, SEEK_END));
  const long size = std::ftell(f);
  ASSERT_GT(size, 64);
  ASSERT_EQ(0, std::fseek(f, size / 2, SEEK_SET));
  const int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(0, std::fseek(f, size / 2, SEEK_SET));
  ASSERT_NE(EOF, std::fputc(c ^ 0x10, f));
  std::fclose(f);

  Rng rng_target(10);
  CapsNetModel target(small_capsnet_config(), rng_target);
  EXPECT_FALSE(load_params(target, path));
}

TEST(Serialize, LoadRejectsLayoutMismatch) {
  Rng rng(8);
  CapsNetModel small(small_capsnet_config(), rng);
  const std::string path = temp_path("mismatch.rdcn");
  ASSERT_TRUE(save_params(small, path));

  // Same architecture family, different widths: element counts differ.
  CapsNetConfig wider = small_capsnet_config();
  wider.conv1_channels = 16;
  Rng rng2(9);
  CapsNetModel other(wider, rng2);
  EXPECT_FALSE(load_params(other, path));

  // Different architecture: parameter count differs.
  DeepCapsConfig dc = DeepCapsConfig::tiny();
  dc.input_hw = 8;
  Rng rng3(10);
  DeepCapsModel deep(dc, rng3);
  EXPECT_FALSE(load_params(deep, path));
}

}  // namespace
}  // namespace redcane::capsnet
