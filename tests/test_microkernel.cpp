// Microkernel dispatch + edge-tail coverage (tensor/microkernel.hpp).
//
// The contract under test: every dispatch target computes every C element
// as one fused-multiply-add chain in ascending k, so for a fixed blocking
// the results of gemm_f32 / gemm_batched_f32 are BIT-identical across
// kScalar / kSse / kAvx2 — and bit-identical to a naive fmaf-chain
// reference, for every M/N/K tail shape and every transpose/accumulate
// variant. This is what keeps the sweep engine's replay exactness and the
// serving runtime's worker-count identity independent of the machine's
// vector ISA for a given build.
#include "tensor/microkernel.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "tensor/random.hpp"

namespace redcane {
namespace {

namespace mk = gemm::mk;

/// Restores the previously-active dispatch target on scope exit so a
/// failing test cannot leak a forced target into later tests.
class ForcedTarget {
 public:
  explicit ForcedTarget(mk::Target t) : prev_(mk::active().target) {
    forced_ = mk::force(t);
  }
  ~ForcedTarget() { mk::force(prev_); }
  [[nodiscard]] bool ok() const { return forced_; }

 private:
  mk::Target prev_;
  bool forced_ = false;
};

std::vector<mk::Target> supported_targets() {
  std::vector<mk::Target> out;
  for (mk::Target t : {mk::Target::kScalar, mk::Target::kSse, mk::Target::kAvx2}) {
    if (mk::supported(t)) out.push_back(t);
  }
  return out;
}

/// The semantic oracle: op(A) * op(B) + beta * C with one std::fmaf chain
/// in ascending k per element — exactly what every microkernel target is
/// specified to compute, so comparisons are bitwise, not tolerance-based.
Tensor reference_gemm_fma(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
                          std::int64_t k, const Tensor& a, const Tensor& b, float beta,
                          const Tensor& c0) {
  Tensor c = beta == 0.0F ? Tensor(Shape{m, n}) : c0;
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      float acc = beta == 0.0F ? 0.0F : c.at(i * n + j);
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float av = trans_a ? a.at(kk * m + i) : a.at(i * k + kk);
        const float bv = trans_b ? b.at(j * k + kk) : b.at(kk * n + j);
        acc = std::fmaf(av, bv, acc);
      }
      c.at(i * n + j) = acc;
    }
  }
  return c;
}

// Shapes chosen to exercise every tail class of the 6x16 register tile and
// the 96/256/192 cache blocking: sub-tile, exact-tile, tile+1, multi-block
// (> 192 rows also triggers the OpenMP row split).
const std::array<std::array<std::int64_t, 3>, 12> kShapes = {{{1, 1, 1},
                                                              {1, 17, 5},
                                                              {3, 5, 2},
                                                              {5, 16, 7},
                                                              {6, 16, 32},
                                                              {7, 17, 33},
                                                              {6, 32, 192},
                                                              {13, 31, 193},
                                                              {96, 256, 64},
                                                              {97, 257, 50},
                                                              {2, 300, 9},
                                                              {200, 33, 40}}};

TEST(Microkernel, EveryTargetMatchesFmaReferenceOnEveryTailShape) {
  Rng rng(21);
  for (const mk::Target target : supported_targets()) {
    const ForcedTarget forced(target);
    ASSERT_TRUE(forced.ok());
    for (const auto& [m, n, k] : kShapes) {
      for (const bool trans_a : {false, true}) {
        for (const bool trans_b : {false, true}) {
          for (const float beta : {0.0F, 1.0F}) {
            const Tensor a = trans_a ? ops::uniform(Shape{k, m}, -1.0, 1.0, rng)
                                     : ops::uniform(Shape{m, k}, -1.0, 1.0, rng);
            const Tensor b = trans_b ? ops::uniform(Shape{n, k}, -1.0, 1.0, rng)
                                     : ops::uniform(Shape{k, n}, -1.0, 1.0, rng);
            const Tensor c0 = ops::uniform(Shape{m, n}, -1.0, 1.0, rng);
            const Tensor want =
                reference_gemm_fma(trans_a, trans_b, m, n, k, a, b, beta, c0);
            Tensor got = c0;
            gemm::gemm_f32(trans_a, trans_b, m, n, k, a.data().data(), b.data().data(),
                           beta, got.data().data());
            for (std::int64_t i = 0; i < m * n; ++i) {
              ASSERT_EQ(got.at(i), want.at(i))
                  << mk::active().name << " m=" << m << " n=" << n << " k=" << k
                  << " ta=" << trans_a << " tb=" << trans_b << " beta=" << beta
                  << " at " << i;
            }
          }
        }
      }
    }
  }
}

TEST(Microkernel, ScalarFallbackAgreesBitwiseWithSimdDispatch) {
  // The cross-target identity guarantee, asserted directly: force the
  // scalar fallback, then the best SIMD target, and require bitwise-equal
  // outputs. On machines with no SIMD target this degenerates to
  // scalar-vs-scalar (still a valid run, trivially equal).
  Rng rng(22);
  const std::vector<mk::Target> targets = supported_targets();
  const mk::Target best = targets.back();
  for (const auto& [m, n, k] : kShapes) {
    const Tensor a = ops::uniform(Shape{m, k}, -2.0, 2.0, rng);
    const Tensor b = ops::uniform(Shape{k, n}, -2.0, 2.0, rng);
    Tensor c_scalar(Shape{m, n});
    Tensor c_simd(Shape{m, n});
    {
      const ForcedTarget forced(mk::Target::kScalar);
      ASSERT_TRUE(forced.ok());
      gemm::gemm_f32(false, false, m, n, k, a.data().data(), b.data().data(), 0.0F,
                     c_scalar.data().data());
    }
    {
      const ForcedTarget forced(best);
      ASSERT_TRUE(forced.ok());
      gemm::gemm_f32(false, false, m, n, k, a.data().data(), b.data().data(), 0.0F,
                     c_simd.data().data());
    }
    for (std::int64_t i = 0; i < m * n; ++i) {
      ASSERT_EQ(c_scalar.at(i), c_simd.at(i))
          << "scalar vs simd disagreement, m=" << m << " n=" << n << " k=" << k
          << " at " << i;
    }
  }
}

TEST(Microkernel, BatchedGemmIdenticalAcrossTargetsIncludingDotPath) {
  // gemm_batched_f32's per-item kernel (ops.small), covering the routing
  // shapes: weighted sum (m=1), agreement update (n=1, the scalar fmaf dot
  // chain), backward outer product (k=1), plus a generic odd shape and a
  // broadcast B operand (stride 0).
  struct Case {
    std::int64_t batch, m, n, k, stride_a, stride_b, stride_c;
  };
  const std::array<Case, 5> cases = {{
      {24, 1, 8, 50, 50, 8 * 50, 8},       // weighted sum
      {12, 50, 1, 8, 8 * 50, 8, 50},       // agreement dot
      {5, 7, 16, 1, 7, 16, 7 * 16},        // outer product
      {3, 7, 17, 13, 7 * 13, 13 * 17, 7 * 17},  // odd tails
      {6, 4, 9, 11, 4 * 11, 0, 4 * 9},     // broadcast B
  }};
  Rng rng(23);
  for (const Case& cs : cases) {
    const std::int64_t a_elems =
        (cs.batch - 1) * cs.stride_a + cs.m * cs.k;
    const std::int64_t b_elems = (cs.batch - 1) * cs.stride_b + cs.k * cs.n;
    const std::int64_t c_elems = (cs.batch - 1) * cs.stride_c + cs.m * cs.n;
    const Tensor a = ops::uniform(Shape{a_elems}, -1.0, 1.0, rng);
    const Tensor b = ops::uniform(Shape{b_elems}, -1.0, 1.0, rng);
    std::vector<Tensor> results;
    for (const mk::Target target : supported_targets()) {
      const ForcedTarget forced(target);
      ASSERT_TRUE(forced.ok());
      Tensor c(Shape{c_elems});
      gemm::gemm_batched_f32(cs.batch, cs.m, cs.n, cs.k, a.data().data(), cs.stride_a,
                             b.data().data(), cs.stride_b, 0.0F, c.data().data(),
                             cs.stride_c);
      results.push_back(std::move(c));
    }
    // Reference: fmaf chains per element of each batch item.
    Tensor want(Shape{c_elems});
    for (std::int64_t p = 0; p < cs.batch; ++p) {
      for (std::int64_t i = 0; i < cs.m; ++i) {
        for (std::int64_t j = 0; j < cs.n; ++j) {
          float acc = 0.0F;
          for (std::int64_t kk = 0; kk < cs.k; ++kk) {
            acc = std::fmaf(a.at(p * cs.stride_a + i * cs.k + kk),
                            b.at(p * cs.stride_b + kk * cs.n + j), acc);
          }
          want.at(p * cs.stride_c + i * cs.n + j) = acc;
        }
      }
    }
    for (const Tensor& got : results) {
      for (std::int64_t i = 0; i < c_elems; ++i) {
        ASSERT_EQ(got.at(i), want.at(i)) << "batch case m=" << cs.m << " n=" << cs.n
                                         << " k=" << cs.k << " at " << i;
      }
    }
  }
}

TEST(Microkernel, ZeroTimesNaNStillPropagatesOnEveryTarget) {
  // The IEEE contract of the core survives dispatch: fma(0, NaN, 0) is NaN.
  for (const mk::Target target : supported_targets()) {
    const ForcedTarget forced(target);
    ASSERT_TRUE(forced.ok());
    const Tensor a(Shape{1, 2}, {0.0F, 1.0F});
    const Tensor b(Shape{2, 1}, {std::nanf(""), 2.0F});
    const Tensor c = gemm::matmul(a, b);
    EXPECT_TRUE(std::isnan(c.at(0)));
  }
}

TEST(Microkernel, EnvOverrideSelectsTheRequestedTarget) {
  // Every ForcedTarget in this binary restores the previously-active
  // target, so whenever no ForcedTarget is live the active target is
  // whatever first-use resolution picked — which, with
  // REDCANE_GEMM_KERNEL set (CI runs this binary under =scalar), must be
  // the requested target. This is the only check of resolve()'s env path.
  const char* env = std::getenv("REDCANE_GEMM_KERNEL");
  if (env == nullptr) GTEST_SKIP() << "REDCANE_GEMM_KERNEL not set";
  mk::Target want;
  if (std::strcmp(env, "scalar") == 0) {
    want = mk::Target::kScalar;
  } else if (std::strcmp(env, "sse") == 0) {
    want = mk::Target::kSse;
  } else if (std::strcmp(env, "avx2") == 0) {
    want = mk::Target::kAvx2;
  } else {
    GTEST_SKIP() << "unknown REDCANE_GEMM_KERNEL value '" << env << "'";
  }
  if (!mk::supported(want)) GTEST_SKIP() << "'" << env << "' unsupported on this machine";
  EXPECT_EQ(mk::active().target, want) << "env override was not honored by dispatch";
}

TEST(Microkernel, ForceRejectsUnsupportedTargetAndKeepsDispatch) {
  const mk::Target before = mk::active().target;
  bool any_unsupported = false;
  for (mk::Target t : {mk::Target::kSse, mk::Target::kAvx2}) {
    if (!mk::supported(t)) {
      any_unsupported = true;
      EXPECT_FALSE(mk::force(t));
      EXPECT_EQ(mk::active().target, before);
    }
  }
  if (!any_unsupported) GTEST_SKIP() << "all targets supported on this machine";
}

}  // namespace
}  // namespace redcane
