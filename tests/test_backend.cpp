// Execution-backend contracts (src/backend/ + quant/lut_gemm):
//  * the LUT-accumulate chain kernel with an exact adder reproduces the
//    exact integer kernel, and approximate adders actually perturb;
//  * an EmulatedBackend layer with the accurate multiplier + exact adder
//    matches the quantized reference convolution bitwise, per layer
//    (Conv2D vs quant::approx_conv2d, Dense vs quant::approx_matmul,
//    ClassCaps votes vs an independently coded affine oracle);
//  * emulation binds to eval forwards inside an armed scope only, is
//    thread-local, and nests;
//  * NoiseBackend reproduces the GaussianInjector streams of the sweep
//    engine / serving registry seeding discipline;
//  * SweepEngine::backend_accuracy agrees with point_accuracy for
//    rule-expressible backends and runs opaque backends full-batch;
//  * Step 7: cross_validate_design reports |predicted - emulated| <= 2 pp
//    for accurate-multiplier selections (the acceptance gate of the
//    noise-model cross-validation).
#include "backend/backend.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "approx/library.hpp"
#include "capsnet/capsnet_model.hpp"
#include "capsnet/class_caps.hpp"
#include "capsnet/conv_caps3d.hpp"
#include "capsnet/trainer.hpp"
#include "core/methodology.hpp"
#include "core/sweep_engine.hpp"
#include "data/synthetic.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "quant/approx_conv.hpp"
#include "quant/lut_gemm.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "tensor/random.hpp"

namespace redcane::backend {
namespace {

class ExactAccum final : public gemm::U32Accum {
 public:
  [[nodiscard]] std::uint32_t add(std::uint32_t a, std::uint32_t b) const override {
    return a + b;
  }
};

TEST(LutChainKernel, ExactAccumMatchesExactKernelAndMasksAgree) {
  const std::int64_t m = 7;
  const std::int64_t n = 5;
  const std::int64_t k = 23;
  Rng rng(11);
  std::vector<std::uint8_t> a(static_cast<std::size_t>(m * k));
  std::vector<std::uint8_t> mask(static_cast<std::size_t>(m * k));
  std::vector<std::uint8_t> b(static_cast<std::size_t>(k * n));
  for (auto& v : a) v = static_cast<std::uint8_t>(rng.next_u64() % 256);
  for (auto& v : mask) v = static_cast<std::uint8_t>(rng.next_u64() % 2);
  for (auto& v : b) v = static_cast<std::uint8_t>(rng.next_u64() % 256);
  std::vector<std::uint32_t> lut(256 * 256);
  quant::build_product_lut(&approx::multiplier_by_name("axm_drum4_dm1"), lut.data());

  std::vector<std::uint64_t> qq64(static_cast<std::size_t>(m * n));
  std::vector<std::uint64_t> qw(static_cast<std::size_t>(m * n));
  std::vector<std::uint64_t> qa(static_cast<std::size_t>(m));
  std::vector<std::int64_t> taps(static_cast<std::size_t>(m));
  gemm::gemm_u8_lut(m, n, k, a.data(), mask.data(), b.data(), lut.data(), qq64.data(),
                    qw.data(), qa.data(), taps.data());

  std::vector<std::uint32_t> qq32(static_cast<std::size_t>(m * n));
  std::vector<std::uint64_t> qw2(static_cast<std::size_t>(m * n));
  std::vector<std::uint64_t> qa2(static_cast<std::size_t>(m));
  std::vector<std::int64_t> taps2(static_cast<std::size_t>(m));
  const ExactAccum exact;
  gemm::gemm_u8_lut_chain(m, n, k, a.data(), mask.data(), b.data(), lut.data(), exact,
                          qq32.data(), qw2.data(), qa2.data(), taps2.data());
  for (std::size_t i = 0; i < qq64.size(); ++i) {
    EXPECT_EQ(qq64[i], qq32[i]) << "qq at " << i;
    EXPECT_EQ(qw[i], qw2[i]) << "qw at " << i;
  }
  EXPECT_EQ(qa, qa2);
  EXPECT_EQ(taps, taps2);

  // Null mask == all-ones mask.
  std::vector<std::uint8_t> ones(static_cast<std::size_t>(m * k), 1);
  std::vector<std::uint64_t> qq_ones(static_cast<std::size_t>(m * n));
  gemm::gemm_u8_lut(m, n, k, a.data(), ones.data(), b.data(), lut.data(), qq_ones.data(),
                    qw.data(), qa.data(), taps.data());
  std::vector<std::uint64_t> qq_null(static_cast<std::size_t>(m * n));
  gemm::gemm_u8_lut(m, n, k, a.data(), nullptr, b.data(), lut.data(), qq_null.data(),
                    qw2.data(), qa2.data(), taps2.data());
  EXPECT_EQ(qq_ones, qq_null);
  for (std::int64_t i = 0; i < m; ++i) EXPECT_EQ(taps2[static_cast<std::size_t>(i)], k);

  // A truncating adder must actually change the sums on this data.
  class AdderAccum final : public gemm::U32Accum {
   public:
    explicit AdderAccum(const approx::Adder& a) : a_(a) {}
    [[nodiscard]] std::uint32_t add(std::uint32_t x, std::uint32_t y) const override {
      return a_.add(x, y);
    }
    const approx::Adder& a_;
  };
  const AdderAccum trunc(approx::adder_by_name("axa_trunc6"));
  gemm::gemm_u8_lut_chain(m, n, k, a.data(), mask.data(), b.data(), lut.data(), trunc,
                          qq32.data(), qw2.data(), qa2.data(), taps2.data());
  bool any_differs = false;
  for (std::size_t i = 0; i < qq64.size(); ++i) {
    if (qq64[i] != qq32[i]) any_differs = true;
  }
  EXPECT_TRUE(any_differs);
}

TEST(Emulation, Conv2DMatchesQuantizedReferenceBitwise) {
  Rng rng(5);
  nn::Conv2DSpec cs;
  cs.in_channels = 3;
  cs.out_channels = 4;
  cs.kernel = 3;
  cs.stride = 1;
  cs.pad = 1;
  nn::Conv2D conv("ConvX", cs, rng);
  const Tensor x = ops::uniform(Shape{2, 8, 8, 3}, 0.0, 1.0, rng);

  quant::ApproxConvSpec as;
  as.stride = 1;
  as.pad = 1;
  for (const char* mul_name : {"axm_exact", "axm_drum4_dm1"}) {
    for (const char* adder_name : {"", "axa_loa6"}) {
      EmulationPlan plan;
      ASSERT_TRUE(plan.set_by_name("ConvX", mul_name, adder_name));
      const quant::MacUnit unit = plan.find("ConvX")->unit;
      const Tensor want = quant::approx_conv2d(x, conv.weight().value, conv.params()[1]->value,
                                               as, unit);
      const EmulationScope scope(plan);
      const Tensor got = conv.forward(x, /*train=*/false);
      ASSERT_EQ(want.shape(), got.shape());
      for (std::int64_t i = 0; i < want.numel(); ++i) {
        ASSERT_EQ(want.at(i), got.at(i))
            << mul_name << "/" << (adder_name[0] == '\0' ? "exact-acc" : adder_name)
            << " diverges at " << i;
      }
    }
  }
}

TEST(Emulation, BindsToEvalForwardsInsideArmedScopeOnly) {
  Rng rng(6);
  nn::Conv2DSpec cs;
  cs.in_channels = 1;
  cs.out_channels = 2;
  cs.kernel = 3;
  nn::Conv2D conv("ConvY", cs, rng);
  const Tensor x = ops::uniform(Shape{1, 6, 6, 1}, 0.0, 1.0, rng);
  const Tensor float_out = conv.forward(x, /*train=*/false);

  EmulationPlan plan;
  ASSERT_TRUE(plan.set_by_name("ConvY", "axm_drum3_jv3"));
  const EmulationScope scope(plan);
  // Unplanned layer names run float even inside a scope.
  EXPECT_EQ(active_mac_unit("SomeOtherLayer"), nullptr);
  // Train forwards ignore the armed plan (emulation is inference-only).
  const Tensor trained = conv.forward(x, /*train=*/true);
  for (std::int64_t i = 0; i < float_out.numel(); ++i) {
    ASSERT_EQ(float_out.at(i), trained.at(i));
  }
  // Eval forwards hit the emulated path.
  const Tensor emulated = conv.forward(x, /*train=*/false);
  bool differs = false;
  for (std::int64_t i = 0; i < float_out.numel(); ++i) {
    if (float_out.at(i) != emulated.at(i)) differs = true;
  }
  EXPECT_TRUE(differs) << "drum3 emulation left the conv output untouched";
}

TEST(Emulation, ScopeIsThreadLocalAndNests) {
  EXPECT_EQ(active_plan(), nullptr);
  EmulationPlan outer;
  outer.set("A", SiteUnit{});
  {
    const EmulationScope s1(outer);
    EXPECT_EQ(active_plan(), &outer);
    EXPECT_NE(active_mac_unit("A"), nullptr);
    EmulationPlan inner;
    inner.set("B", SiteUnit{});
    {
      const EmulationScope s2(inner);
      EXPECT_EQ(active_plan(), &inner);
      EXPECT_EQ(active_mac_unit("A"), nullptr);
      // Sibling threads see no armed plan.
      const EmulationPlan* seen = &inner;
      std::thread([&seen] { seen = active_plan(); }).join();
      EXPECT_EQ(seen, nullptr);
    }
    EXPECT_EQ(active_plan(), &outer);
  }
  EXPECT_EQ(active_plan(), nullptr);
}

TEST(Emulation, PlanRejectsUnknownComponentNames) {
  EmulationPlan plan;
  EXPECT_FALSE(plan.set_by_name("L", "not_a_multiplier"));
  EXPECT_FALSE(plan.set_by_name("L", "axm_drum4_dm1", "not_an_adder"));
  EXPECT_EQ(plan.size(), 0U);
  EXPECT_TRUE(plan.set_by_name("L", "axm_drum4_dm1", "axa_loa6", 8));
  ASSERT_NE(plan.find("L"), nullptr);
  EXPECT_EQ(plan.find("L")->unit.mul->info().name, "axm_drum4_dm1");
  EXPECT_EQ(plan.find("L")->unit.adder->info().name, "axa_loa6");
}

TEST(Emulation, DenseMatchesApproxMatmulBitwise) {
  Rng rng(8);
  nn::Dense dense("DenseZ", 12, 7, rng);
  const Tensor x = ops::uniform(Shape{5, 12}, -1.0, 1.0, rng);
  const Tensor w = dense.params()[0]->value;
  const Tensor b = dense.params()[1]->value;

  EmulationPlan plan;
  ASSERT_TRUE(plan.set_by_name("DenseZ", "axm_drum4_dm1"));
  const Tensor want = quant::approx_matmul(x, w, b, plan.find("DenseZ")->unit, 8);
  const EmulationScope scope(plan);
  const Tensor got = dense.forward(x, /*train=*/false);
  ASSERT_EQ(want.shape(), got.shape());
  for (std::int64_t i = 0; i < want.numel(); ++i) {
    ASSERT_EQ(want.at(i), got.at(i)) << "at " << i;
  }
}

TEST(Emulation, ClassCapsVotesMatchAffineOracleBitwise) {
  Rng rng(9);
  capsnet::ClassCapsSpec spec;
  spec.in_caps = 6;
  spec.in_dim = 4;
  spec.out_caps = 3;
  spec.out_dim = 4;
  capsnet::ClassCaps caps("CapsV", spec, rng);
  const std::int64_t n = 3;
  const Tensor x = ops::uniform(Shape{n, spec.in_caps, spec.in_dim}, -0.5, 0.5, rng);
  const Tensor& w = caps.params()[0]->value;

  EmulationPlan plan;
  ASSERT_TRUE(plan.set_by_name("CapsV", "axm_drum4_dm1"));
  const approx::Multiplier& mul = *plan.find("CapsV")->unit.mul;
  Tensor got;
  {
    const EmulationScope scope(plan);
    got = caps.forward_votes(x, /*train=*/false, nullptr);
  }
  ASSERT_EQ(got.shape(), (Shape{n, spec.in_caps, spec.out_caps, spec.out_dim}));

  // Independent oracle: quantize both operands, accumulate the code
  // products through the multiplier in exact integers, dequantize with the
  // affine expansion — the formula of quant/lut_gemm.hpp, coded from
  // scratch against raw tensors.
  const quant::QuantParams px = quant::fit_params(x, 8);
  const quant::QuantParams pw = quant::fit_params(w, 8);
  const std::vector<std::uint8_t> qx = quant::quantize_u8(x, px);
  const std::vector<std::uint8_t> qw = quant::quantize_u8(w, pw);
  const double sx = px.step();
  const double sw = pw.step();
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t i = 0; i < spec.in_caps; ++i) {
      std::uint64_t sum_qa = 0;
      for (std::int64_t p = 0; p < spec.in_dim; ++p) {
        sum_qa += qx[static_cast<std::size_t>((ni * spec.in_caps + i) * spec.in_dim + p)];
      }
      const double row_base =
          px.min * pw.min * static_cast<double>(spec.in_dim) +
          pw.min * sx * static_cast<double>(sum_qa);
      for (std::int64_t j = 0; j < spec.out_caps; ++j) {
        for (std::int64_t q = 0; q < spec.out_dim; ++q) {
          std::uint64_t sum_qq = 0;
          std::uint64_t sum_qw = 0;
          for (std::int64_t p = 0; p < spec.in_dim; ++p) {
            const std::uint8_t xa =
                qx[static_cast<std::size_t>((ni * spec.in_caps + i) * spec.in_dim + p)];
            const std::uint8_t wb = qw[static_cast<std::size_t>(
                ((i * spec.out_caps + j) * spec.in_dim + p) * spec.out_dim + q)];
            sum_qq += mul.multiply(xa, wb);
            sum_qw += wb;
          }
          double v = row_base;
          v += px.min * sw * static_cast<double>(sum_qw);
          v += sx * sw * static_cast<double>(sum_qq);
          const float want = static_cast<float>(v);
          ASSERT_EQ(want, got.at(((ni * spec.in_caps + i) * spec.out_caps + j) *
                                     spec.out_dim +
                                 q))
              << "vote (" << ni << "," << i << "," << j << "," << q << ")";
        }
      }
    }
  }
}

TEST(Emulation, ConvCaps3DVotesTrackFloatPathWithExactUnit) {
  Rng rng(10);
  capsnet::ConvCaps3DSpec spec;
  spec.in_types = 2;
  spec.in_dim = 3;
  spec.out_types = 2;
  spec.out_dim = 4;
  spec.kernel = 3;
  spec.pad = 1;
  capsnet::ConvCaps3D caps("Caps3DX", spec, rng);
  const Tensor x = ops::uniform(Shape{2, 5, 5, 2, 3}, -0.5, 0.5, rng);
  const Tensor float_out = caps.forward(x, /*train=*/false, nullptr);

  EmulationPlan exact_plan;
  ASSERT_TRUE(exact_plan.set_by_name("Caps3DX", ""));
  Tensor emulated;
  {
    const EmulationScope scope(exact_plan);
    emulated = caps.forward(x, /*train=*/false, nullptr);
  }
  ASSERT_EQ(float_out.shape(), emulated.shape());
  // Exact multiplier + exact accumulation leaves only 8-bit quantization
  // error, which squash keeps small.
  for (std::int64_t i = 0; i < float_out.numel(); ++i) {
    EXPECT_NEAR(float_out.at(i), emulated.at(i), 0.05) << "at " << i;
  }

  EmulationPlan rough_plan;
  ASSERT_TRUE(rough_plan.set_by_name("Caps3DX", "axm_mitchell3_yx7"));
  Tensor rough;
  {
    const EmulationScope scope(rough_plan);
    rough = caps.forward(x, /*train=*/false, nullptr);
  }
  bool differs = false;
  for (std::int64_t i = 0; i < float_out.numel(); ++i) {
    if (rough.at(i) != emulated.at(i)) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Backends, NoiseBackendReproducesInjectorStream) {
  Rng rng(13);
  capsnet::CapsNetConfig cfg = capsnet::CapsNetConfig::tiny();
  cfg.input_hw = 12;
  cfg.conv1_kernel = 5;
  cfg.primary_kernel = 5;
  capsnet::CapsNetModel model(cfg, rng);
  const Tensor x = ops::uniform(Shape{4, 12, 12, 1}, 0.0, 1.0, rng);

  std::vector<noise::InjectionRule> rules{
      noise::group_rule(capsnet::OpKind::kMacOutput, noise::NoiseSpec{0.05, 0.001})};
  const std::uint64_t seed = 2020;
  const std::uint64_t salt = 17;
  const NoiseBackend nb(rules, seed);
  const Tensor got = nb.run(model, x, salt);

  noise::GaussianInjector injector(rules, seed ^ (salt * kSaltMix));
  const Tensor want = model.infer(x, &injector);
  ASSERT_EQ(want.shape(), got.shape());
  for (std::int64_t i = 0; i < want.numel(); ++i) {
    ASSERT_EQ(want.at(i), got.at(i)) << "at " << i;
  }

  // Exact backend == hook-free inference.
  const ExactBackend ex;
  const Tensor clean = ex.run(model, x, salt);
  const Tensor plain = model.infer(x);
  for (std::int64_t i = 0; i < plain.numel(); ++i) {
    ASSERT_EQ(plain.at(i), clean.at(i));
  }
}

TEST(Backends, SweepEngineBackendAccuracyAgreesWithPointAccuracy) {
  Rng rng(14);
  capsnet::CapsNetConfig cfg = capsnet::CapsNetConfig::tiny();
  cfg.input_hw = 12;
  cfg.conv1_kernel = 5;
  cfg.primary_kernel = 5;
  capsnet::CapsNetModel model(cfg, rng);
  data::SyntheticSpec s;
  s.hw = 12;
  s.test_count = 24;
  s.train_count = 4;
  s.seed = 15;
  const data::Dataset ds = data::make_synthetic(s);

  core::SweepEngineConfig ec;
  ec.eval_batch = 8;
  std::vector<noise::InjectionRule> rules{
      noise::group_rule(capsnet::OpKind::kMacOutput, noise::NoiseSpec{0.1, 0.0})};

  core::SweepEngine a(model, ds.test_x, ds.test_y, ec);
  const double via_point = a.point_accuracy(rules, 3);
  core::SweepEngine b(model, ds.test_x, ds.test_y, ec);
  const NoiseBackend nb(rules, ec.seed);
  const double via_backend = b.backend_accuracy(nb, 3);
  EXPECT_EQ(via_point, via_backend);

  // An empty emulation plan is the exact network: full-batch backend runs
  // must land exactly on the clean accuracy.
  const EmulatedBackend none((EmulationPlan()));
  EXPECT_EQ(b.backend_accuracy(none, 0), b.clean_accuracy());
}

TEST(Backends, CrossValidateExactSelectionsWithinTwoPp) {
  data::SyntheticSpec s;
  s.hw = 12;
  s.test_count = 64;
  s.train_count = 240;
  s.seed = 16;
  const data::Dataset ds = data::make_synthetic(s);
  capsnet::CapsNetConfig cfg = capsnet::CapsNetConfig::tiny();
  cfg.input_hw = 12;
  cfg.conv1_kernel = 5;
  cfg.primary_kernel = 5;
  Rng rng(17);
  capsnet::CapsNetModel model(cfg, rng);
  capsnet::TrainConfig tc;
  tc.epochs = 3;
  tc.batch_size = 16;
  tc.lr = 3e-3;
  capsnet::train(model, ds.train_x, ds.train_y, tc);

  // A design whose every MAC selection is the accurate multiplier: the
  // noise model predicts the clean network, and behavioral emulation may
  // differ only by 8-bit quantization — the acceptance bound is 2 pp.
  core::MethodologyResult design;
  design.profiled.push_back(
      core::ProfiledComponent{&approx::exact_multiplier(), 0.0, 0.0, true});
  const Tensor probe = capsnet::slice_rows(ds.test_x, 0, 1);
  for (const core::Site& site : core::extract_sites(model, probe)) {
    core::SiteSelection sel;
    sel.site = site;
    sel.component = &approx::exact_multiplier();
    design.selections.push_back(sel);
  }

  core::CrossValidateConfig cv;
  cv.eval_batch = 16;
  const core::CrossValidationResult r =
      core::cross_validate_design(model, ds.test_x, ds.test_y, design, cv);
  ASSERT_EQ(r.entries.size(), 3U);  // Conv1, PrimaryCaps, ClassCaps MAC sites.
  for (const core::CrossValidationEntry& e : r.entries) {
    EXPECT_EQ(e.component, "axm_exact");
    EXPECT_EQ(e.predicted_accuracy, r.baseline_accuracy);
    EXPECT_LE(std::abs(e.delta_pp()), 2.0) << e.site.to_string();
  }
  EXPECT_LE(r.max_abs_delta_pp(), 2.0);
  EXPECT_LE(std::abs(r.joint_delta_pp()), 2.0);
}

}  // namespace
}  // namespace redcane::backend
