#include "core/methodology.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "capsnet/capsnet_model.hpp"
#include "capsnet/trainer.hpp"
#include "core/report.hpp"
#include "data/synthetic.hpp"

namespace redcane::core {
namespace {

using capsnet::OpKind;

struct Flow {
  std::unique_ptr<capsnet::CapsNetModel> model;
  data::Dataset ds;
  MethodologyResult result;

  Flow() {
    capsnet::CapsNetConfig cfg;
    cfg.input_hw = 14;
    cfg.conv1_kernel = 5;
    cfg.conv1_channels = 8;
    cfg.primary_kernel = 5;
    cfg.primary_stride = 2;
    cfg.primary_types = 2;
    cfg.primary_dim = 4;
    cfg.class_dim = 4;
    Rng rng(2);
    model = std::make_unique<capsnet::CapsNetModel>(cfg, rng);

    data::SyntheticSpec s;
    s.kind = data::DatasetKind::kMnist;
    s.hw = 14;
    s.train_count = 300;
    s.test_count = 100;
    s.seed = 44;
    ds = data::make_synthetic(s);

    capsnet::TrainConfig tc;
    tc.epochs = 10;
    tc.batch_size = 20;
    tc.lr = 3e-3;
    capsnet::train(*model, ds.train_x, ds.train_y, tc);

    MethodologyConfig mc;
    mc.resilience.sweep.nms = {0.5, 0.05, 0.005, 0.0};
    mc.profile_samples = 5000;
    // The micro model's 100-image test set quantizes accuracy to 1%
    // steps; widen the marking/tolerance bands accordingly.
    mc.mark_threshold_pct = 5.0;
    mc.tolerance_pct = 2.0;
    result = run_redcane(*model, ds.test_x, ds.test_y, ds.name, mc);
  }
};

Flow& flow() {
  static Flow f;
  return f;
}

TEST(Methodology, Step1FindsAllSites) {
  const MethodologyResult& r = flow().result;
  EXPECT_FALSE(r.sites.empty());
  // Every group has at least one site in a routed CapsNet.
  for (OpKind kind : all_groups()) {
    EXPECT_FALSE(sites_of_group(r.sites, kind).empty())
        << capsnet::op_kind_name(kind);
  }
}

TEST(Methodology, Step2ProducesFourCurves) {
  const MethodologyResult& r = flow().result;
  ASSERT_EQ(r.group_curves.size(), 4U);
  for (const ResilienceCurve& c : r.group_curves) {
    EXPECT_EQ(c.nms.size(), 4U);
    EXPECT_EQ(c.drop_pct.size(), 4U);
  }
}

TEST(Methodology, Step3PartitionsGroups) {
  const MethodologyResult& r = flow().result;
  EXPECT_EQ(r.resilient_groups.size() + r.non_resilient_groups.size(), 4U);
  // Routing coefficients (softmax) must be marked resilient; MAC outputs
  // must not (the paper's core finding).
  EXPECT_NE(std::find(r.resilient_groups.begin(), r.resilient_groups.end(),
                      OpKind::kSoftmax),
            r.resilient_groups.end());
  EXPECT_NE(std::find(r.non_resilient_groups.begin(), r.non_resilient_groups.end(),
                      OpKind::kMacOutput),
            r.non_resilient_groups.end());
}

TEST(Methodology, Step4OnlyCoversNonResilientGroups) {
  const MethodologyResult& r = flow().result;
  for (const ResilienceCurve& c : r.layer_curves) {
    EXPECT_NE(std::find(r.non_resilient_groups.begin(), r.non_resilient_groups.end(), c.kind),
              r.non_resilient_groups.end())
        << "layer curve for resilient group " << capsnet::op_kind_name(c.kind);
  }
  EXPECT_GT(r.evaluations_saved_by_pruning, 0);
}

TEST(Methodology, Step6SelectsOneComponentPerSite) {
  const MethodologyResult& r = flow().result;
  EXPECT_EQ(r.selections.size(), r.sites.size());
  for (const SiteSelection& s : r.selections) {
    ASSERT_NE(s.component, nullptr);
    EXPECT_GE(s.tolerable_nm, 0.0);
  }
}

TEST(Methodology, ResilientSitesGetMoreAggressiveComponents) {
  const MethodologyResult& r = flow().result;
  double max_softmax_saving = 0.0;
  double max_conv1_saving = 0.0;
  for (const SiteSelection& s : r.selections) {
    if (s.site.kind == OpKind::kSoftmax) {
      max_softmax_saving = std::max(max_softmax_saving, s.power_saving());
    }
    if (s.site.kind == OpKind::kMacOutput && s.site.layer == "Conv1") {
      max_conv1_saving = std::max(max_conv1_saving, s.power_saving());
    }
  }
  EXPECT_GE(max_softmax_saving, max_conv1_saving);
  EXPECT_GT(max_softmax_saving, 0.3);  // Aggressive approximation tolerated.
}

TEST(Methodology, BaselineAccuracyRecorded) {
  const MethodologyResult& r = flow().result;
  EXPECT_GT(r.baseline_accuracy, 0.6);
  EXPECT_EQ(r.model_name, "CapsNet");
  EXPECT_EQ(r.dataset_name, "MNIST(synthetic)");
}

TEST(Methodology, ReportContainsAllSections) {
  const std::string report = render_report(flow().result);
  EXPECT_NE(report.find("Step 1"), std::string::npos);
  EXPECT_NE(report.find("Step 2"), std::string::npos);
  EXPECT_NE(report.find("Step 6"), std::string::npos);
  EXPECT_NE(report.find("MAC outputs"), std::string::npos);
  EXPECT_NE(report.find("axm_"), std::string::npos);
}

TEST(Methodology, RenderGroupsListsAllFour) {
  const std::string g = render_groups(flow().result.sites);
  EXPECT_NE(g.find("# 1"), std::string::npos);
  EXPECT_NE(g.find("# 4"), std::string::npos);
  EXPECT_NE(g.find("softmax"), std::string::npos);
}

TEST(Selection, ExactComponentForZeroTolerance) {
  const auto profiled =
      profile_library(approx::InputDistribution::uniform(), 9, 2000, 3);
  const approx::Multiplier* m = select_component(profiled, 0.0);
  EXPECT_EQ(m->info().name, "axm_exact");
}

TEST(Selection, LargeToleranceSelectsCheapComponent) {
  const auto profiled =
      profile_library(approx::InputDistribution::uniform(), 9, 2000, 3);
  const approx::Multiplier* m = select_component(profiled, 0.5);
  EXPECT_LT(m->info().power_uw, 200.0);
}

TEST(Selection, MonotoneInTolerance) {
  const auto profiled =
      profile_library(approx::InputDistribution::uniform(), 9, 2000, 3);
  double prev_power = 1e18;
  for (double tol : {0.0001, 0.001, 0.01, 0.1}) {
    const double p = select_component(profiled, tol)->info().power_uw;
    EXPECT_LE(p, prev_power + 1e-9) << "tolerance " << tol;
    prev_power = p;
  }
}

}  // namespace
}  // namespace redcane::core
