#include "tensor/gemm.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "approx/library.hpp"
#include "nn/conv2d.hpp"
#include "nn/im2col.hpp"
#include "quant/approx_conv.hpp"
#include "tensor/ops.hpp"
#include "tensor/random.hpp"

namespace redcane {
namespace {

/// Textbook triple loop with double accumulation, the correctness oracle
/// for the blocked kernel.
Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const std::int64_t m = a.shape().dim(0);
  const std::int64_t k = a.shape().dim(1);
  const std::int64_t n = b.shape().dim(1);
  Tensor c(Shape{m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(a(i, kk)) * b(kk, j);
      }
      c(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

Tensor transposed2d(const Tensor& t) {
  const std::int64_t r = t.shape().dim(0);
  const std::int64_t c = t.shape().dim(1);
  Tensor out(Shape{c, r});
  for (std::int64_t i = 0; i < r; ++i) {
    for (std::int64_t j = 0; j < c; ++j) out(j, i) = t(i, j);
  }
  return out;
}

TEST(Gemm, BlockedMatchesNaiveOnRandomShapes) {
  Rng rng(7);
  for (const auto& [m, k, n] : std::vector<std::array<std::int64_t, 3>>{
           {1, 1, 1}, {3, 5, 2}, {17, 33, 9}, {64, 128, 48}, {130, 70, 300}}) {
    const Tensor a = ops::uniform(Shape{m, k}, -1.0, 1.0, rng);
    const Tensor b = ops::uniform(Shape{k, n}, -1.0, 1.0, rng);
    const Tensor want = naive_matmul(a, b);
    const Tensor got = gemm::matmul(a, b);
    ASSERT_EQ(got.shape(), want.shape());
    for (std::int64_t i = 0; i < got.numel(); ++i) {
      EXPECT_NEAR(got.at(i), want.at(i), 1e-3F) << "m=" << m << " k=" << k << " n=" << n;
    }
  }
}

TEST(Gemm, TransposedOperandsMatchUntransposed) {
  Rng rng(11);
  const Tensor a = ops::uniform(Shape{19, 23}, -1.0, 1.0, rng);
  const Tensor b = ops::uniform(Shape{23, 31}, -1.0, 1.0, rng);
  const Tensor want = gemm::matmul(a, b);
  const Tensor got_ta = gemm::matmul(transposed2d(a), b, /*trans_a=*/true, /*trans_b=*/false);
  const Tensor got_tb = gemm::matmul(a, transposed2d(b), /*trans_a=*/false, /*trans_b=*/true);
  for (std::int64_t i = 0; i < want.numel(); ++i) {
    EXPECT_FLOAT_EQ(got_ta.at(i), want.at(i));
    EXPECT_FLOAT_EQ(got_tb.at(i), want.at(i));
  }
}

TEST(Gemm, BetaOneAccumulates) {
  Rng rng(13);
  const Tensor a = ops::uniform(Shape{8, 12}, -1.0, 1.0, rng);
  const Tensor b = ops::uniform(Shape{12, 10}, -1.0, 1.0, rng);
  const Tensor product = gemm::matmul(a, b);
  Tensor c = ops::uniform(Shape{8, 10}, -1.0, 1.0, rng);
  const Tensor want = ops::add(c, product);
  gemm::gemm_f32(false, false, 8, 10, 12, a.data().data(), b.data().data(), 1.0F,
                 c.data().data());
  // In-place accumulation rounds (c + t1) + t2 + ...; the oracle rounds
  // c + (t1 + t2 + ...), so equality holds only to float tolerance.
  for (std::int64_t i = 0; i < want.numel(); ++i) EXPECT_NEAR(c.at(i), want.at(i), 1e-5F);
}

// The seed kernels skipped a == 0.0F operands, silently dropping 0 * NaN
// and 0 * Inf contributions. IEEE semantics must hold in the core.
TEST(Gemm, ZeroTimesNaNPropagates) {
  const Tensor a(Shape{1, 2}, {0.0F, 1.0F});
  const Tensor b(Shape{2, 1}, {std::nanf(""), 2.0F});
  const Tensor c = ops::matmul(a, b);
  EXPECT_TRUE(std::isnan(c.at(0)));
}

TEST(Gemm, ZeroInputTimesNaNWeightPropagatesThroughConv) {
  const Tensor x(Shape{1, 2, 2, 1}, 0.0F);
  const Tensor w(Shape{1, 1, 1, 1}, std::nanf(""));
  const Tensor out = nn::conv2d_forward(x, w, Tensor(), 1, 0);
  for (std::int64_t i = 0; i < out.numel(); ++i) EXPECT_TRUE(std::isnan(out.at(i)));
}

TEST(Im2col, RoundTripIdentityOnNonOverlappingStride) {
  Rng rng(3);
  // kernel == stride, no padding: every input element appears in exactly
  // one patch, so col2im(im2col(x)) reproduces x.
  const Tensor x = ops::uniform(Shape{2, 6, 6, 3}, -1.0, 1.0, rng);
  const nn::ConvDims d = nn::make_conv_dims(x.shape(), 2, 2, /*cout=*/1, /*stride=*/2,
                                            /*pad=*/0);
  const Tensor cols = nn::im2col(x, d);
  ASSERT_EQ(cols.shape(), (Shape{d.rows(), d.cols()}));
  Tensor back(x.shape());
  nn::col2im(cols.data().data(), d, back.data().data());
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(back.at(i), x.at(i));
}

TEST(Im2col, OverlapAccumulatesMultiplicity) {
  // 3x3 kernel, stride 1, pad 1: col2im(im2col(1)) counts how many patches
  // cover each pixel (9 for interior, less on the border).
  const Tensor x(Shape{1, 5, 5, 1}, 1.0F);
  const nn::ConvDims d = nn::make_conv_dims(x.shape(), 3, 3, 1, 1, 1);
  const Tensor cols = nn::im2col(x, d);
  Tensor back(x.shape());
  nn::col2im(cols.data().data(), d, back.data().data());
  EXPECT_FLOAT_EQ(back(0, 2, 2, 0), 9.0F);  // interior
  EXPECT_FLOAT_EQ(back(0, 0, 0, 0), 4.0F);  // corner
  EXPECT_FLOAT_EQ(back(0, 0, 2, 0), 6.0F);  // edge
}

TEST(Im2colCodes, MasksExactlyThePaddingTaps) {
  std::vector<std::uint8_t> x(2 * 2, 200);  // [1, 2, 2, 1] image, all code 200
  const nn::ConvDims d = nn::make_conv_dims(Shape{1, 2, 2, 1}, 3, 3, 1, 1, 1);
  std::vector<std::uint8_t> cols(static_cast<std::size_t>(d.rows() * d.cols()));
  std::vector<std::uint8_t> mask(cols.size());
  nn::im2col_codes(x.data(), d, cols.data(), mask.data());
  // Patch at output (0, 0): only taps (ky, kx) in {1, 2} x {1, 2} are real.
  for (std::int64_t ky = 0; ky < 3; ++ky) {
    for (std::int64_t kx = 0; kx < 3; ++kx) {
      const std::size_t idx = static_cast<std::size_t>(ky * 3 + kx);
      const bool valid = ky >= 1 && kx >= 1;
      EXPECT_EQ(mask[idx], valid ? 1 : 0) << "ky=" << ky << " kx=" << kx;
      EXPECT_EQ(cols[idx], valid ? 200 : 0);
    }
  }
}

TEST(ApproxConvGemm, ExactMultiplierMatchesReferenceWithinQuantError) {
  Rng rng(5);
  const Tensor x = ops::uniform(Shape{2, 8, 8, 3}, 0.0, 1.0, rng);
  const Tensor w = ops::uniform(Shape{3, 3, 3, 4}, -0.5, 0.5, rng);
  const Tensor bias = ops::uniform(Shape{4}, -0.1, 0.1, rng);
  quant::ApproxConvSpec spec;
  spec.stride = 1;
  spec.pad = 1;
  spec.bits = 8;
  const Tensor ref = quant::reference_conv2d(x, w, bias, spec);
  const Tensor got = quant::approx_conv2d(x, w, bias, spec, approx::exact_multiplier());
  ASSERT_EQ(ref.shape(), got.shape());
  // 8-bit affine quantization of both operands over 27 taps: half-step
  // rounding error per operand bounds each output by ~taps * (sx + sw) / 2.
  for (std::int64_t i = 0; i < ref.numel(); ++i) {
    EXPECT_NEAR(got.at(i), ref.at(i), 0.08F) << "at " << i;
  }
}

TEST(ApproxConvGemm, StridedUnpaddedMatchesReference) {
  Rng rng(9);
  const Tensor x = ops::uniform(Shape{1, 9, 9, 2}, -1.0, 1.0, rng);
  const Tensor w = ops::uniform(Shape{3, 3, 2, 3}, -0.5, 0.5, rng);
  quant::ApproxConvSpec spec;
  spec.stride = 2;
  spec.pad = 0;
  spec.bits = 8;
  const Tensor ref = quant::reference_conv2d(x, w, Tensor(), spec);
  const Tensor got = quant::approx_conv2d(x, w, Tensor(), spec, approx::exact_multiplier());
  ASSERT_EQ(ref.shape(), got.shape());
  for (std::int64_t i = 0; i < ref.numel(); ++i) {
    EXPECT_NEAR(got.at(i), ref.at(i), 0.15F) << "at " << i;
  }
}

}  // namespace
}  // namespace redcane
