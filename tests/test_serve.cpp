// Serving-runtime contracts (src/serve/):
//  * served predictions are bit-identical across worker counts, for the
//    exact, the designed AND the emulated variant (same discipline as
//    test_sweep_engine: batch composition is arrival-order-determined,
//    noise streams are keyed by batch content, and the emulated backend is
//    RNG-free — never by scheduling);
//  * the micro-batcher coalesces only same-variant runs, bounded by
//    max_batch, in FIFO order;
//  * the deployment manifest round-trips through its text format and
//    rejects malformed input;
//  * the registry arms the designed variant with exactly the manifest's
//    non-exact sites and ModelRegistry::open serves a saved design;
//  * eval forwards mutate no model state (const-forward audit).
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "capsnet/capsnet_model.hpp"
#include "capsnet/deepcaps_model.hpp"
#include "capsnet/serialize.hpp"
#include "capsnet/trainer.hpp"
#include "core/groups.hpp"
#include "core/manifest.hpp"
#include "data/synthetic.hpp"

namespace redcane::serve {
namespace {

capsnet::CapsNetConfig small_config() {
  capsnet::CapsNetConfig cfg;
  cfg.input_hw = 14;
  cfg.conv1_kernel = 5;
  cfg.conv1_channels = 8;
  cfg.primary_kernel = 5;
  cfg.primary_stride = 2;
  cfg.primary_types = 2;
  cfg.primary_dim = 4;
  cfg.class_dim = 4;
  return cfg;
}

data::Dataset small_dataset(std::int64_t count) {
  data::SyntheticSpec s;
  s.kind = data::DatasetKind::kMnist;
  s.hw = 14;
  s.channels = 1;
  s.train_count = 4;
  s.test_count = count;
  s.seed = 77;
  return data::make_synthetic(s);
}

/// Manifest over an in-memory model: every MAC site gets a small noise.
core::DeploymentManifest noisy_manifest(capsnet::CapsModel& model, const Tensor& probe) {
  core::DeploymentManifest m;
  m.model = model.name();
  m.profile = "tiny";
  m.input_hw = model.input_shape().dim(0);
  m.input_channels = model.input_shape().dim(2);
  m.num_classes = model.num_classes();
  m.noise_seed = 909;
  m.baseline_accuracy = 0.5;
  for (const core::Site& site : core::extract_sites(model, probe)) {
    core::ManifestSite ms;
    ms.site = site;
    if (site.kind == capsnet::OpKind::kMacOutput) {
      ms.component = "axm_drum3_jv3";  // Real library name: the emulated
      ms.nm = 0.05;                    // variant resolves and executes it.
      ms.na = 0.001;
    }
    ms.tolerable_nm = 0.05;
    m.sites.push_back(ms);
  }
  return m;
}

std::unique_ptr<ModelRegistry> make_registry(const data::Dataset& ds) {
  Rng rng(21);
  auto model = std::make_unique<capsnet::CapsNetModel>(small_config(), rng);
  core::DeploymentManifest m =
      noisy_manifest(*model, capsnet::slice_rows(ds.test_x, 0, 1));
  return std::make_unique<ModelRegistry>(std::move(model), std::move(m));
}

/// Serves one fixed request stream (an exact, a designed and an emulated
/// wave, submitted before start so batch layout is pinned) and returns the
/// predictions in stream order.
std::vector<Prediction> serve_stream(ModelRegistry& registry, const data::Dataset& ds,
                                     int workers, std::int64_t max_batch) {
  ServerConfig sc;
  sc.workers = workers;
  sc.max_batch = max_batch;
  sc.max_delay_us = 1000;
  InferenceServer server(registry, sc);
  const std::int64_t n = ds.test_x.shape().dim(0);
  std::vector<std::future<Prediction>> futs;
  for (const char* variant : {kVariantExact, kVariantDesigned, kVariantEmulated}) {
    for (std::int64_t i = 0; i < n; ++i) {
      futs.push_back(server.submit(capsnet::slice_rows(ds.test_x, i, i + 1), variant));
    }
  }
  server.start();
  std::vector<Prediction> out;
  out.reserve(futs.size());
  for (auto& f : futs) out.push_back(f.get());
  server.shutdown();
  return out;
}

TEST(Serve, PredictionsBitIdenticalAcrossWorkerCounts) {
  const data::Dataset ds = small_dataset(24);
  std::unique_ptr<ModelRegistry> registry = make_registry(ds);

  const std::vector<Prediction> ref = serve_stream(*registry, ds, 1, 8);
  for (const int workers : {2, 4}) {
    const std::vector<Prediction> got = serve_stream(*registry, ds, workers, 8);
    ASSERT_EQ(ref.size(), got.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(ref[i].label, got[i].label) << "workers=" << workers << " req " << i;
      EXPECT_EQ(ref[i].variant, got[i].variant);
      ASSERT_EQ(ref[i].scores.size(), got[i].scores.size());
      for (std::size_t c = 0; c < ref[i].scores.size(); ++c) {
        // Bitwise: batching and scheduling must not perturb the math.
        EXPECT_EQ(ref[i].scores[c], got[i].scores[c])
            << "workers=" << workers << " req " << i << " class " << c;
      }
    }
  }
}

TEST(Serve, DesignedAndEmulatedVariantsActuallyPerturb) {
  const data::Dataset ds = small_dataset(8);
  std::unique_ptr<ModelRegistry> registry = make_registry(ds);
  EXPECT_GT(registry->designed_noisy_sites(), 0);
  EXPECT_GT(registry->emulated_sites(), 0);

  const std::vector<Prediction> all = serve_stream(*registry, ds, 1, 4);
  const std::size_t n = all.size() / 3;
  bool designed_differs = false;
  bool emulated_differs = false;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < all[i].scores.size(); ++c) {
      if (all[i].scores[c] != all[n + i].scores[c]) designed_differs = true;
      if (all[i].scores[c] != all[2 * n + i].scores[c]) emulated_differs = true;
    }
  }
  EXPECT_TRUE(designed_differs) << "designed variant served exact activations";
  EXPECT_TRUE(emulated_differs) << "emulated variant served exact activations";
}

TEST(Serve, BatcherCoalescesSameVariantRunsFifo) {
  MicroBatcher batcher(BatcherConfig{3, 0});
  auto push = [&](std::uint64_t id, const std::string& variant) {
    QueuedRequest r;
    r.id = id;
    r.variant = variant;
    r.enqueued = ServeClock::now();
    ASSERT_TRUE(batcher.push(r));
  };
  // exact x4, designed x2, exact x1.
  for (std::uint64_t id : {0, 1, 2, 3}) push(id, kVariantExact);
  push(4, kVariantDesigned);
  push(5, kVariantDesigned);
  push(6, kVariantExact);
  batcher.close();

  std::vector<std::vector<std::uint64_t>> batches;
  std::vector<QueuedRequest> batch;
  while (batcher.pop_batch(batch)) {
    std::vector<std::uint64_t> ids;
    for (QueuedRequest& r : batch) {
      ids.push_back(r.id);
      EXPECT_EQ(r.variant, batch.front().variant);
    }
    batches.push_back(ids);
  }
  const std::vector<std::vector<std::uint64_t>> expected = {
      {0, 1, 2}, {3}, {4, 5}, {6}};
  EXPECT_EQ(batches, expected);
  EXPECT_EQ(batcher.pending(), 0U);

  // Closed batchers refuse new requests instead of queueing them forever.
  QueuedRequest late;
  late.id = 7;
  late.variant = kVariantExact;
  EXPECT_FALSE(batcher.push(late));
}

TEST(Serve, ManifestRoundTripsThroughText) {
  const data::Dataset ds = small_dataset(2);
  Rng rng(22);
  capsnet::CapsNetModel model(small_config(), rng);
  core::DeploymentManifest m =
      noisy_manifest(model, capsnet::slice_rows(ds.test_x, 0, 1));
  m.checkpoint = "my designs/model v2.rdcn";  // Paths may contain spaces.

  core::DeploymentManifest parsed;
  ASSERT_TRUE(core::manifest_from_text(core::manifest_to_text(m), parsed));
  EXPECT_EQ(parsed.checkpoint, m.checkpoint);
  EXPECT_EQ(parsed.model, m.model);
  EXPECT_EQ(parsed.profile, m.profile);
  EXPECT_EQ(parsed.input_hw, m.input_hw);
  EXPECT_EQ(parsed.input_channels, m.input_channels);
  EXPECT_EQ(parsed.num_classes, m.num_classes);
  EXPECT_EQ(parsed.noise_seed, m.noise_seed);
  EXPECT_EQ(parsed.baseline_accuracy, m.baseline_accuracy);  // %.17g round-trip.
  ASSERT_EQ(parsed.sites.size(), m.sites.size());
  for (std::size_t i = 0; i < m.sites.size(); ++i) {
    EXPECT_EQ(parsed.sites[i].site.layer, m.sites[i].site.layer);
    EXPECT_EQ(parsed.sites[i].site.kind, m.sites[i].site.kind);
    EXPECT_EQ(parsed.sites[i].component, m.sites[i].component);
    EXPECT_EQ(parsed.sites[i].nm, m.sites[i].nm);  // Bit-exact doubles.
    EXPECT_EQ(parsed.sites[i].na, m.sites[i].na);
    EXPECT_EQ(parsed.sites[i].tolerable_nm, m.sites[i].tolerable_nm);
  }
}

TEST(Serve, ManifestRejectsMalformedText) {
  core::DeploymentManifest out;
  EXPECT_FALSE(core::manifest_from_text("", out));
  EXPECT_FALSE(core::manifest_from_text("not-a-manifest v9\nmodel CapsNet\n", out));
  EXPECT_FALSE(core::manifest_from_text(
      "redcane-manifest v1\nmodel CapsNet\nsite L mac\n", out));  // Short site line.
  EXPECT_FALSE(core::manifest_from_text(
      "redcane-manifest v1\nmodel CapsNet\nsite L warp c 0 0 0\n", out));  // Bad kind.
  EXPECT_FALSE(core::manifest_from_text(
      "redcane-manifest v1\nmodel CapsNet\nfrobnicate 3\n", out));  // Unknown key.
  EXPECT_FALSE(core::manifest_from_text("redcane-manifest v1\n", out));  // No model.
}

TEST(Serve, OpKindTokensRoundTrip) {
  for (const capsnet::OpKind kind : core::all_groups()) {
    capsnet::OpKind back{};
    ASSERT_TRUE(core::op_kind_from_token(core::op_kind_token(kind), back));
    EXPECT_EQ(back, kind);
  }
  capsnet::OpKind out{};
  EXPECT_FALSE(core::op_kind_from_token("warp", out));
}

TEST(Serve, RegistryOpenServesASavedDesign) {
  // Save a checkpoint + manifest to disk, re-open through the deployment
  // path, and check the loaded model predicts exactly like the original.
  // The loadable path rebuilds from the "tiny" profile, so the original
  // must be exactly tiny + manifest overrides. 20x20 keeps tiny's 9x9
  // kernels valid while staying fast.
  data::SyntheticSpec spec;
  spec.kind = data::DatasetKind::kMnist;
  spec.hw = 20;
  spec.channels = 1;
  spec.train_count = 4;
  spec.test_count = 8;
  spec.seed = 79;
  const data::Dataset ds = data::make_synthetic(spec);
  capsnet::CapsNetConfig cfg = capsnet::CapsNetConfig::tiny();
  cfg.input_hw = 20;  // Overrides the profile default, as a manifest can.
  Rng rng(23);
  capsnet::CapsNetModel original(cfg, rng);

  const std::string dir = ::testing::TempDir();
  const std::string ckpt = dir + "/design.rdcn";
  ASSERT_TRUE(capsnet::save_params(original, ckpt));
  core::DeploymentManifest m =
      noisy_manifest(original, capsnet::slice_rows(ds.test_x, 0, 1));
  m.checkpoint = "design.rdcn";  // Relative: resolved against the manifest dir.
  const std::string manifest_path = dir + "/design.manifest";
  ASSERT_TRUE(core::save_manifest(m, manifest_path));

  std::unique_ptr<ModelRegistry> registry = ModelRegistry::open(manifest_path);
  ASSERT_NE(registry, nullptr);
  EXPECT_EQ(registry->variant_names(),
            (std::vector<std::string>{kVariantExact, kVariantDesigned, kVariantEmulated}));

  const Tensor probe = capsnet::slice_rows(ds.test_x, 0, 4);
  const Tensor expect = original.infer(probe);
  const Tensor got = registry->model().infer(probe);
  ASSERT_EQ(expect.shape(), got.shape());
  for (std::int64_t i = 0; i < expect.numel(); ++i) {
    ASSERT_EQ(expect.at(i), got.at(i)) << "loaded model diverges at " << i;
  }
}

TEST(Serve, RegistryOpenRejectsBadInputs) {
  EXPECT_EQ(ModelRegistry::open("/nonexistent/path.manifest"), nullptr);

  // Valid manifest text, missing checkpoint file.
  const std::string dir = ::testing::TempDir();
  core::DeploymentManifest m;
  m.model = "CapsNet";
  m.profile = "tiny";
  m.input_hw = 14;
  m.input_channels = 1;
  m.num_classes = 10;
  m.checkpoint = "missing.rdcn";
  const std::string path = dir + "/broken.manifest";
  ASSERT_TRUE(core::save_manifest(m, path));
  EXPECT_EQ(ModelRegistry::open(path), nullptr);
}

TEST(Serve, ServerStatsAccountForRequestsAndBatches) {
  const data::Dataset ds = small_dataset(16);
  std::unique_ptr<ModelRegistry> registry = make_registry(ds);
  ServerConfig sc;
  sc.workers = 2;
  sc.max_batch = 8;
  sc.max_delay_us = 500;
  InferenceServer server(*registry, sc);
  std::vector<std::future<Prediction>> futs;
  for (std::int64_t i = 0; i < 16; ++i) {
    futs.push_back(server.submit(capsnet::slice_rows(ds.test_x, i, i + 1), kVariantExact));
  }
  server.start();
  for (auto& f : futs) {
    const Prediction p = f.get();
    EXPECT_GE(p.label, 0);
    EXPECT_LT(p.label, 10);
    EXPECT_EQ(p.scores.size(), 10U);
    EXPECT_GE(p.latency_us, 0.0);
    EXPECT_GE(p.batch_size, 1);
    EXPECT_LE(p.batch_size, 8);
  }
  server.shutdown();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests, 16);
  EXPECT_EQ(stats.batches, 2);  // Queue pre-filled: two full batches of 8.
  EXPECT_EQ(stats.workers, 2);
  EXPECT_EQ(stats.latencies_us.size(), 16U);
  EXPECT_DOUBLE_EQ(stats.mean_batch_size(), 8.0);
}

TEST(Serve, PercentileIsNearestRankOnSortedLatencies) {
  EXPECT_DOUBLE_EQ(percentile_us({}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile_us({5.0}, 99.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile_us({4.0, 1.0, 3.0, 2.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_us({4.0, 1.0, 3.0, 2.0}, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile_us({4.0, 1.0, 3.0, 2.0}, 50.0), 3.0);
}

TEST(Serve, ConstForwardAuditPassesForBothModels) {
  const data::Dataset ds = small_dataset(4);
  Rng rng(31);
  capsnet::CapsNetModel capsnet_model(small_config(), rng);
  EXPECT_TRUE(capsnet::audit_const_forward(capsnet_model, ds.test_x));

  capsnet::DeepCapsConfig dc = capsnet::DeepCapsConfig::tiny();
  dc.input_hw = 8;
  data::SyntheticSpec s;
  s.kind = data::DatasetKind::kCifar10;
  s.hw = 8;
  s.channels = 3;
  s.train_count = 4;
  s.test_count = 4;
  s.seed = 78;
  Rng rng2(32);
  capsnet::DeepCapsModel deepcaps_model(dc, rng2);
  EXPECT_TRUE(capsnet::audit_const_forward(deepcaps_model, data::make_synthetic(s).test_x));
}

}  // namespace
}  // namespace redcane::serve
