// Serving-runtime contracts (src/serve/):
//  * served predictions are bit-identical across worker counts, for the
//    exact, the designed AND the emulated variant (same discipline as
//    test_sweep_engine: batch composition is arrival-order-determined,
//    noise streams are keyed by batch content, and the emulated backend is
//    RNG-free — never by scheduling);
//  * the micro-batcher coalesces only same-variant runs, bounded by
//    max_batch, in FIFO order;
//  * the deployment manifest round-trips through its text format and
//    rejects malformed input;
//  * the registry arms the designed variant with exactly the manifest's
//    non-exact sites and ModelRegistry::open serves a saved design;
//  * eval forwards mutate no model state (const-forward audit).
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include "serve/attack_eval.hpp"

#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "capsnet/capsnet_model.hpp"
#include "capsnet/deepcaps_model.hpp"
#include "capsnet/serialize.hpp"
#include "capsnet/trainer.hpp"
#include "core/groups.hpp"
#include "core/manifest.hpp"
#include "data/synthetic.hpp"

namespace redcane::serve {
namespace {

capsnet::CapsNetConfig small_config() {
  capsnet::CapsNetConfig cfg;
  cfg.input_hw = 14;
  cfg.conv1_kernel = 5;
  cfg.conv1_channels = 8;
  cfg.primary_kernel = 5;
  cfg.primary_stride = 2;
  cfg.primary_types = 2;
  cfg.primary_dim = 4;
  cfg.class_dim = 4;
  return cfg;
}

data::Dataset small_dataset(std::int64_t count) {
  data::SyntheticSpec s;
  s.kind = data::DatasetKind::kMnist;
  s.hw = 14;
  s.channels = 1;
  s.train_count = 4;
  s.test_count = count;
  s.seed = 77;
  return data::make_synthetic(s);
}

/// Manifest over an in-memory model: every MAC site gets a small noise.
core::DeploymentManifest noisy_manifest(capsnet::CapsModel& model, const Tensor& probe) {
  core::DeploymentManifest m;
  m.model = model.name();
  m.profile = "tiny";
  m.input_hw = model.input_shape().dim(0);
  m.input_channels = model.input_shape().dim(2);
  m.num_classes = model.num_classes();
  m.noise_seed = 909;
  m.baseline_accuracy = 0.5;
  for (const core::Site& site : core::extract_sites(model, probe)) {
    core::ManifestSite ms;
    ms.site = site;
    if (site.kind == capsnet::OpKind::kMacOutput) {
      ms.component = "axm_drum3_jv3";  // Real library name: the emulated
      ms.nm = 0.05;                    // variant resolves and executes it.
      ms.na = 0.001;
    }
    ms.tolerable_nm = 0.05;
    m.sites.push_back(ms);
  }
  return m;
}

std::unique_ptr<ModelRegistry> make_registry(const data::Dataset& ds) {
  Rng rng(21);
  auto model = std::make_unique<capsnet::CapsNetModel>(small_config(), rng);
  core::DeploymentManifest m =
      noisy_manifest(*model, capsnet::slice_rows(ds.test_x, 0, 1));
  return std::make_unique<ModelRegistry>(std::move(model), std::move(m));
}

/// Serves one fixed request stream (an exact, a designed and an emulated
/// wave, submitted before start so batch layout is pinned) and returns the
/// predictions in stream order.
std::vector<Prediction> serve_stream(ModelRegistry& registry, const data::Dataset& ds,
                                     int workers, std::int64_t max_batch) {
  ServerConfig sc;
  sc.workers = workers;
  sc.max_batch = max_batch;
  sc.max_delay_us = 1000;
  InferenceServer server(registry, sc);
  const std::int64_t n = ds.test_x.shape().dim(0);
  std::vector<std::future<ServeResult>> futs;
  for (const char* variant : {kVariantExact, kVariantDesigned, kVariantEmulated}) {
    for (std::int64_t i = 0; i < n; ++i) {
      futs.push_back(server.submit(capsnet::slice_rows(ds.test_x, i, i + 1), variant));
    }
  }
  server.start();
  std::vector<Prediction> out;
  out.reserve(futs.size());
  for (auto& f : futs) {
    ServeResult res = f.get();
    EXPECT_TRUE(res.ok()) << serve_error_name(res.error.code) << ": " << res.error.detail;
    out.push_back(std::move(res.prediction));
  }
  server.shutdown();
  return out;
}

TEST(Serve, PredictionsBitIdenticalAcrossWorkerCounts) {
  const data::Dataset ds = small_dataset(24);
  std::unique_ptr<ModelRegistry> registry = make_registry(ds);

  const std::vector<Prediction> ref = serve_stream(*registry, ds, 1, 8);
  for (const int workers : {2, 4}) {
    const std::vector<Prediction> got = serve_stream(*registry, ds, workers, 8);
    ASSERT_EQ(ref.size(), got.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(ref[i].label, got[i].label) << "workers=" << workers << " req " << i;
      EXPECT_EQ(ref[i].variant, got[i].variant);
      ASSERT_EQ(ref[i].scores.size(), got[i].scores.size());
      for (std::size_t c = 0; c < ref[i].scores.size(); ++c) {
        // Bitwise: batching and scheduling must not perturb the math.
        EXPECT_EQ(ref[i].scores[c], got[i].scores[c])
            << "workers=" << workers << " req " << i << " class " << c;
      }
    }
  }
}

TEST(Serve, DesignedAndEmulatedVariantsActuallyPerturb) {
  const data::Dataset ds = small_dataset(8);
  std::unique_ptr<ModelRegistry> registry = make_registry(ds);
  EXPECT_GT(registry->designed_noisy_sites(), 0);
  EXPECT_GT(registry->emulated_sites(), 0);

  const std::vector<Prediction> all = serve_stream(*registry, ds, 1, 4);
  const std::size_t n = all.size() / 3;
  bool designed_differs = false;
  bool emulated_differs = false;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < all[i].scores.size(); ++c) {
      if (all[i].scores[c] != all[n + i].scores[c]) designed_differs = true;
      if (all[i].scores[c] != all[2 * n + i].scores[c]) emulated_differs = true;
    }
  }
  EXPECT_TRUE(designed_differs) << "designed variant served exact activations";
  EXPECT_TRUE(emulated_differs) << "emulated variant served exact activations";
}

TEST(Serve, BatcherCoalescesSameVariantRunsFifo) {
  MicroBatcher batcher(BatcherConfig{3, 0});
  auto push = [&](std::uint64_t id, const std::string& variant) {
    QueuedRequest r;
    r.id = id;
    r.variant = variant;
    r.enqueued = ServeClock::now();
    ASSERT_EQ(batcher.push(r), PushStatus::kAccepted);
  };
  // exact x4, designed x2, exact x1.
  for (std::uint64_t id : {0, 1, 2, 3}) push(id, kVariantExact);
  push(4, kVariantDesigned);
  push(5, kVariantDesigned);
  push(6, kVariantExact);
  batcher.close();

  std::vector<std::vector<std::uint64_t>> batches;
  std::vector<QueuedRequest> batch;
  std::vector<QueuedRequest> expired;
  while (batcher.pop_batch(batch, expired)) {
    EXPECT_TRUE(expired.empty());  // No deadlines set on any request.
    std::vector<std::uint64_t> ids;
    for (QueuedRequest& r : batch) {
      ids.push_back(r.id);
      EXPECT_EQ(r.variant, batch.front().variant);
    }
    batches.push_back(ids);
  }
  const std::vector<std::vector<std::uint64_t>> expected = {
      {0, 1, 2}, {3}, {4, 5}, {6}};
  EXPECT_EQ(batches, expected);
  EXPECT_EQ(batcher.pending(), 0U);

  // Closed batchers refuse new requests instead of queueing them forever.
  QueuedRequest late;
  late.id = 7;
  late.variant = kVariantExact;
  EXPECT_EQ(batcher.push(late), PushStatus::kClosed);
}

TEST(Serve, BatcherBoundsQueueAndTracksPressure) {
  BatcherConfig bc;
  bc.max_batch = 4;
  bc.max_delay_us = 0;
  bc.max_queue = 8;  // Watermarks derive: high 6, low 4.
  MicroBatcher batcher(bc);
  EXPECT_EQ(batcher.config().high_watermark, 6);
  EXPECT_EQ(batcher.config().low_watermark, 4);

  auto make = [](std::uint64_t id) {
    QueuedRequest r;
    r.id = id;
    r.variant = kVariantExact;
    r.enqueued = ServeClock::now();
    return r;
  };
  for (std::uint64_t id = 0; id < 8; ++id) {
    QueuedRequest r = make(id);
    ASSERT_EQ(batcher.push(r), PushStatus::kAccepted);
    EXPECT_EQ(batcher.pressured(), id + 1 >= 6) << "depth " << id + 1;
  }
  // Admission control: the 9th request bounces, the queue does not grow.
  QueuedRequest overflow = make(8);
  EXPECT_EQ(batcher.push(overflow), PushStatus::kFull);
  EXPECT_EQ(batcher.pending(), 8U);
  EXPECT_EQ(overflow.id, 8U);  // Left untouched: the caller resolves it.

  // Draining to the low watermark clears pressure (hysteresis: not at 5).
  std::vector<QueuedRequest> batch;
  std::vector<QueuedRequest> expired;
  ASSERT_TRUE(batcher.pop_batch(batch, expired));  // 8 -> 4.
  EXPECT_EQ(batch.size(), 4U);
  EXPECT_FALSE(batcher.pressured());
  batcher.close();
}

TEST(Serve, BatcherShedsExpiredRequestsAtPopTime) {
  MicroBatcher batcher(BatcherConfig{4, 0});
  auto push = [&](std::uint64_t id, bool expired_already) {
    QueuedRequest r;
    r.id = id;
    r.variant = kVariantExact;
    r.enqueued = ServeClock::now();
    r.has_deadline = true;
    r.deadline = expired_already ? r.enqueued - std::chrono::microseconds(1)
                                 : r.enqueued + std::chrono::seconds(60);
    ASSERT_EQ(batcher.push(r), PushStatus::kAccepted);
  };
  push(0, /*expired_already=*/true);
  push(1, /*expired_already=*/false);
  push(2, /*expired_already=*/true);
  push(3, /*expired_already=*/false);
  batcher.close();

  std::vector<QueuedRequest> batch;
  std::vector<QueuedRequest> expired;
  ASSERT_TRUE(batcher.pop_batch(batch, expired));
  ASSERT_EQ(batch.size(), 2U);
  EXPECT_EQ(batch[0].id, 1U);
  EXPECT_EQ(batch[1].id, 3U);
  ASSERT_EQ(expired.size(), 2U);  // Shed, not served: no wasted batch slot.
  EXPECT_EQ(expired[0].id, 0U);
  EXPECT_EQ(expired[1].id, 2U);
  EXPECT_FALSE(batcher.pop_batch(batch, expired));
}

TEST(Serve, ManifestRoundTripsThroughText) {
  const data::Dataset ds = small_dataset(2);
  Rng rng(22);
  capsnet::CapsNetModel model(small_config(), rng);
  core::DeploymentManifest m =
      noisy_manifest(model, capsnet::slice_rows(ds.test_x, 0, 1));
  m.checkpoint = "my designs/model v2.rdcn";  // Paths may contain spaces.

  core::DeploymentManifest parsed;
  ASSERT_TRUE(core::manifest_from_text(core::manifest_to_text(m), parsed));
  EXPECT_EQ(parsed.checkpoint, m.checkpoint);
  EXPECT_EQ(parsed.model, m.model);
  EXPECT_EQ(parsed.profile, m.profile);
  EXPECT_EQ(parsed.input_hw, m.input_hw);
  EXPECT_EQ(parsed.input_channels, m.input_channels);
  EXPECT_EQ(parsed.num_classes, m.num_classes);
  EXPECT_EQ(parsed.noise_seed, m.noise_seed);
  EXPECT_EQ(parsed.baseline_accuracy, m.baseline_accuracy);  // %.17g round-trip.
  ASSERT_EQ(parsed.sites.size(), m.sites.size());
  for (std::size_t i = 0; i < m.sites.size(); ++i) {
    EXPECT_EQ(parsed.sites[i].site.layer, m.sites[i].site.layer);
    EXPECT_EQ(parsed.sites[i].site.kind, m.sites[i].site.kind);
    EXPECT_EQ(parsed.sites[i].component, m.sites[i].component);
    EXPECT_EQ(parsed.sites[i].nm, m.sites[i].nm);  // Bit-exact doubles.
    EXPECT_EQ(parsed.sites[i].na, m.sites[i].na);
    EXPECT_EQ(parsed.sites[i].tolerable_nm, m.sites[i].tolerable_nm);
  }
}

TEST(Serve, ManifestRejectsMalformedText) {
  core::DeploymentManifest out;
  EXPECT_FALSE(core::manifest_from_text("", out));
  EXPECT_FALSE(core::manifest_from_text("not-a-manifest v9\nmodel CapsNet\n", out));
  EXPECT_FALSE(core::manifest_from_text(
      "redcane-manifest v1\nmodel CapsNet\nsite L mac\n", out));  // Short site line.
  EXPECT_FALSE(core::manifest_from_text(
      "redcane-manifest v1\nmodel CapsNet\nsite L warp c 0 0 0\n", out));  // Bad kind.
  EXPECT_FALSE(core::manifest_from_text(
      "redcane-manifest v1\nmodel CapsNet\nfrobnicate 3\n", out));  // Unknown key.
  EXPECT_FALSE(core::manifest_from_text("redcane-manifest v1\n", out));  // No model.
}

TEST(Serve, ManifestRejectsNonFiniteNoiseFields) {
  core::DeploymentManifest out;
  // NaN/Inf noise would propagate into every served designed batch.
  EXPECT_FALSE(core::manifest_from_text(
      "redcane-manifest v1\nmodel CapsNet\nsite L mac c nan 0 0\n", out));
  EXPECT_FALSE(core::manifest_from_text(
      "redcane-manifest v1\nmodel CapsNet\nsite L mac c 0 inf 0\n", out));
  EXPECT_FALSE(core::manifest_from_text(
      "redcane-manifest v1\nmodel CapsNet\nsite L mac c 0 0 -inf\n", out));
  EXPECT_FALSE(core::manifest_from_text(
      "redcane-manifest v1\nmodel CapsNet\nbaseline_accuracy nan\n", out));
  // The same fields parse fine when finite.
  EXPECT_TRUE(core::manifest_from_text(
      "redcane-manifest v1\nmodel CapsNet\nsite L mac c 0.05 0.001 0.05\n", out));
}

TEST(Serve, ManifestRejectsDuplicateSiteEntries) {
  core::DeploymentManifest out;
  // Two selections for the same (layer, kind): inconsistent manifest.
  EXPECT_FALSE(core::manifest_from_text(
      "redcane-manifest v1\nmodel CapsNet\n"
      "site conv1 mac a 0 0 0\nsite conv1 mac b 0.1 0 0\n",
      out));
  // Same layer, different kind is legitimate.
  EXPECT_TRUE(core::manifest_from_text(
      "redcane-manifest v1\nmodel CapsNet\n"
      "site conv1 mac a 0 0 0\nsite conv1 activation - 0 0 0\n",
      out));
}

TEST(Serve, ManifestRejectsAbsurdGeometryCounts) {
  core::DeploymentManifest out;
  EXPECT_FALSE(core::manifest_from_text(
      "redcane-manifest v1\nmodel CapsNet\ninput_hw -20\n", out));
  EXPECT_FALSE(core::manifest_from_text(
      "redcane-manifest v1\nmodel CapsNet\ninput_hw 99999999\n", out));
  EXPECT_FALSE(core::manifest_from_text(
      "redcane-manifest v1\nmodel CapsNet\ninput_channels 10000000\n", out));
  EXPECT_FALSE(core::manifest_from_text(
      "redcane-manifest v1\nmodel CapsNet\nnum_classes -1\n", out));
  EXPECT_TRUE(core::manifest_from_text(
      "redcane-manifest v1\nmodel CapsNet\ninput_hw 28\nnum_classes 10\n", out));
}

TEST(Serve, OpKindTokensRoundTrip) {
  for (const capsnet::OpKind kind : core::all_groups()) {
    capsnet::OpKind back{};
    ASSERT_TRUE(core::op_kind_from_token(core::op_kind_token(kind), back));
    EXPECT_EQ(back, kind);
  }
  capsnet::OpKind out{};
  EXPECT_FALSE(core::op_kind_from_token("warp", out));
}

TEST(Serve, RegistryOpenServesASavedDesign) {
  // Save a checkpoint + manifest to disk, re-open through the deployment
  // path, and check the loaded model predicts exactly like the original.
  // The loadable path rebuilds from the "tiny" profile, so the original
  // must be exactly tiny + manifest overrides. 20x20 keeps tiny's 9x9
  // kernels valid while staying fast.
  data::SyntheticSpec spec;
  spec.kind = data::DatasetKind::kMnist;
  spec.hw = 20;
  spec.channels = 1;
  spec.train_count = 4;
  spec.test_count = 8;
  spec.seed = 79;
  const data::Dataset ds = data::make_synthetic(spec);
  capsnet::CapsNetConfig cfg = capsnet::CapsNetConfig::tiny();
  cfg.input_hw = 20;  // Overrides the profile default, as a manifest can.
  Rng rng(23);
  capsnet::CapsNetModel original(cfg, rng);

  const std::string dir = ::testing::TempDir();
  const std::string ckpt = dir + "/design.rdcn";
  ASSERT_TRUE(capsnet::save_params(original, ckpt));
  core::DeploymentManifest m =
      noisy_manifest(original, capsnet::slice_rows(ds.test_x, 0, 1));
  m.checkpoint = "design.rdcn";  // Relative: resolved against the manifest dir.
  const std::string manifest_path = dir + "/design.manifest";
  ASSERT_TRUE(core::save_manifest(m, manifest_path));

  std::unique_ptr<ModelRegistry> registry = ModelRegistry::open(manifest_path);
  ASSERT_NE(registry, nullptr);
  EXPECT_EQ(registry->variant_names(),
            (std::vector<std::string>{kVariantExact, kVariantDesigned, kVariantEmulated}));

  const Tensor probe = capsnet::slice_rows(ds.test_x, 0, 4);
  const Tensor expect = original.infer(probe);
  const Tensor got = registry->model().infer(probe);
  ASSERT_EQ(expect.shape(), got.shape());
  for (std::int64_t i = 0; i < expect.numel(); ++i) {
    ASSERT_EQ(expect.at(i), got.at(i)) << "loaded model diverges at " << i;
  }
}

TEST(Serve, RegistryOpenRejectsBadInputs) {
  EXPECT_EQ(ModelRegistry::open("/nonexistent/path.manifest"), nullptr);

  // Valid manifest text, missing checkpoint file.
  const std::string dir = ::testing::TempDir();
  core::DeploymentManifest m;
  m.model = "CapsNet";
  m.profile = "tiny";
  m.input_hw = 14;
  m.input_channels = 1;
  m.num_classes = 10;
  m.checkpoint = "missing.rdcn";
  const std::string path = dir + "/broken.manifest";
  ASSERT_TRUE(core::save_manifest(m, path));
  EXPECT_EQ(ModelRegistry::open(path), nullptr);
}

TEST(Serve, ServerStatsAccountForRequestsAndBatches) {
  const data::Dataset ds = small_dataset(16);
  std::unique_ptr<ModelRegistry> registry = make_registry(ds);
  ServerConfig sc;
  sc.workers = 2;
  sc.max_batch = 8;
  sc.max_delay_us = 500;
  InferenceServer server(*registry, sc);
  std::vector<std::future<ServeResult>> futs;
  for (std::int64_t i = 0; i < 16; ++i) {
    futs.push_back(server.submit(capsnet::slice_rows(ds.test_x, i, i + 1), kVariantExact));
  }
  server.start();
  for (auto& f : futs) {
    const ServeResult res = f.get();
    ASSERT_TRUE(res.ok());
    const Prediction& p = res.prediction;
    EXPECT_GE(p.label, 0);
    EXPECT_LT(p.label, 10);
    EXPECT_EQ(p.scores.size(), 10U);
    EXPECT_GE(p.latency_us, 0.0);
    EXPECT_GE(p.batch_size, 1);
    EXPECT_LE(p.batch_size, 8);
    EXPECT_EQ(p.served_by, kVariantExact);
    EXPECT_FALSE(p.degraded);
  }
  server.shutdown();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 16);
  EXPECT_EQ(stats.requests, 16);
  EXPECT_EQ(stats.batches, 2);  // Queue pre-filled: two full batches of 8.
  EXPECT_EQ(stats.workers, 2);
  EXPECT_EQ(stats.latency.count, 16);
  EXPECT_GE(stats.latency.p50_us, 0.0);
  EXPECT_LE(stats.latency.p50_us, stats.latency.p99_us);
  EXPECT_LE(stats.latency.p99_us, stats.latency.max_us);
  EXPECT_GE(stats.latency.mean_us, 0.0);
  EXPECT_LE(stats.latency.mean_us, stats.latency.max_us);
  EXPECT_DOUBLE_EQ(stats.mean_batch_size(), 8.0);
  EXPECT_TRUE(stats.reconciles());
}

TEST(Serve, LatencySummaryComesFromTheSharedHistogram) {
  // The server's per-instance histogram is the same obs::Histogram the
  // registry's serve_latency_us uses; ServerStats::latency must match
  // direct queries on it exactly.
  const data::Dataset ds = small_dataset(8);
  std::unique_ptr<ModelRegistry> registry = make_registry(ds);
  ServerConfig sc;
  sc.workers = 1;
  sc.max_batch = 4;
  InferenceServer server(*registry, sc);
  std::vector<std::future<ServeResult>> futs;
  for (std::int64_t i = 0; i < 8; ++i) {
    futs.push_back(
        server.submit(capsnet::slice_rows(ds.test_x, i, i + 1), kVariantExact));
  }
  server.start();
  for (auto& f : futs) ASSERT_TRUE(f.get().ok());
  server.shutdown();
  const ServerStats stats = server.stats();
  const obs::Histogram& h = server.latency_histogram();
  EXPECT_EQ(stats.latency.count, h.count());
  EXPECT_DOUBLE_EQ(stats.latency.p50_us, h.percentile(50.0));
  EXPECT_DOUBLE_EQ(stats.latency.p99_us, h.percentile(99.0));
  EXPECT_DOUBLE_EQ(stats.latency.p999_us, h.percentile(99.9));
  EXPECT_DOUBLE_EQ(stats.latency.max_us, h.max());
}

TEST(Serve, SubmitResolvesTypedErrorsInsteadOfAborting) {
  const data::Dataset ds = small_dataset(4);
  std::unique_ptr<ModelRegistry> registry = make_registry(ds);
  ServerConfig sc;
  sc.workers = 1;
  InferenceServer server(*registry, sc);
  server.start();

  // Unknown variant: the seed runtime abort()ed here.
  ServeResult res =
      server.submit(capsnet::slice_rows(ds.test_x, 0, 1), "warp-drive").get();
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.error.code, ServeErrorCode::kUnknownVariant);
  EXPECT_FALSE(res.error.detail.empty());

  // Shape mismatch: ditto.
  res = server.submit(Tensor(Shape{1, 3, 3, 1}), kVariantExact).get();
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.error.code, ServeErrorCode::kBadShape);

  // A valid request still serves normally next to the rejected ones.
  res = server.submit(capsnet::slice_rows(ds.test_x, 0, 1), kVariantExact).get();
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.error.code, ServeErrorCode::kOk);

  server.shutdown();

  // Post-shutdown submit: the promise resolves with kShutdown instead of
  // dangling (or aborting).
  res = server.submit(capsnet::slice_rows(ds.test_x, 0, 1), kVariantExact).get();
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.error.code, ServeErrorCode::kShutdown);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 4);
  EXPECT_EQ(stats.requests, 1);
  EXPECT_EQ(stats.rejected_invalid, 2);
  EXPECT_EQ(stats.rejected_shutdown, 1);
  EXPECT_TRUE(stats.reconciles());
}

TEST(Serve, BoundedQueueRejectsOverflowWithQueueFull) {
  const data::Dataset ds = small_dataset(8);
  std::unique_ptr<ModelRegistry> registry = make_registry(ds);
  ServerConfig sc;
  sc.workers = 1;
  sc.max_batch = 4;
  sc.max_queue = 4;
  InferenceServer server(*registry, sc);
  // Workers not started: the queue fills to max_queue, then rejects.
  std::vector<std::future<ServeResult>> futs;
  for (std::int64_t i = 0; i < 8; ++i) {
    futs.push_back(server.submit(capsnet::slice_rows(ds.test_x, i % 8, i % 8 + 1),
                                 kVariantExact));
  }
  server.start();
  std::int64_t served = 0;
  std::int64_t rejected = 0;
  for (auto& f : futs) {
    const ServeResult res = f.get();
    if (res.ok()) ++served;
    else {
      EXPECT_EQ(res.error.code, ServeErrorCode::kQueueFull);
      ++rejected;
    }
  }
  server.shutdown();
  EXPECT_EQ(served, 4);
  EXPECT_EQ(rejected, 4);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.rejected_queue_full, 4);
  EXPECT_TRUE(stats.reconciles());
}

TEST(Serve, ExpiredRequestsResolveWithDeadlineExceeded) {
  const data::Dataset ds = small_dataset(6);
  std::unique_ptr<ModelRegistry> registry = make_registry(ds);
  ServerConfig sc;
  sc.workers = 1;
  sc.max_batch = 2;
  sc.max_delay_us = 0;
  sc.deadline_us = 1;  // Pre-start queueing guarantees expiry by pop time.
  InferenceServer server(*registry, sc);
  std::vector<std::future<ServeResult>> futs;
  for (std::int64_t i = 0; i < 6; ++i) {
    futs.push_back(server.submit(capsnet::slice_rows(ds.test_x, i, i + 1), kVariantExact));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  server.start();
  for (auto& f : futs) {
    const ServeResult res = f.get();
    EXPECT_FALSE(res.ok());
    EXPECT_EQ(res.error.code, ServeErrorCode::kDeadlineExceeded);
  }
  server.shutdown();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.shed_deadline, 6);
  EXPECT_EQ(stats.requests, 0);
  EXPECT_TRUE(stats.reconciles());
}

TEST(Serve, DegradesExpensiveVariantsAboveHighWatermark) {
  const data::Dataset ds = small_dataset(12);
  std::unique_ptr<ModelRegistry> registry = make_registry(ds);
  ServerConfig sc;
  sc.workers = 1;
  sc.max_batch = 4;
  sc.max_queue = 8;  // High watermark 6: pre-filling 12 crosses it.
  sc.degrade_under_pressure = true;
  InferenceServer server(*registry, sc);
  std::vector<std::future<ServeResult>> futs;
  for (std::int64_t i = 0; i < 12; ++i) {
    futs.push_back(
        server.submit(capsnet::slice_rows(ds.test_x, i, i + 1), kVariantEmulated));
  }
  server.start();
  std::int64_t degraded = 0;
  std::int64_t rejected = 0;
  for (auto& f : futs) {
    const ServeResult res = f.get();
    if (!res.ok()) {
      EXPECT_EQ(res.error.code, ServeErrorCode::kQueueFull);
      ++rejected;
      continue;
    }
    EXPECT_EQ(res.prediction.variant, kVariantEmulated);
    if (res.prediction.degraded) {
      EXPECT_EQ(res.error.code, ServeErrorCode::kDegradedServed);
      EXPECT_EQ(res.prediction.served_by, kVariantExact);
      ++degraded;
    } else {
      EXPECT_EQ(res.prediction.served_by, kVariantEmulated);
    }
  }
  server.shutdown();
  EXPECT_GT(degraded, 0) << "queue pressure never degraded an expensive variant";
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.degraded, degraded);
  EXPECT_EQ(stats.rejected_queue_full, rejected);
  EXPECT_TRUE(stats.reconciles());
}

TEST(Serve, RegistryRunReportsUnknownVariantWithoutAborting) {
  const data::Dataset ds = small_dataset(2);
  std::unique_ptr<ModelRegistry> registry = make_registry(ds);
  const RunResult r =
      registry->run("warp-drive", capsnet::slice_rows(ds.test_x, 0, 1), 0);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
}

TEST(Serve, RegistryReloadSwapsModelAndRollsBackOnFailure) {
  data::SyntheticSpec spec;
  spec.kind = data::DatasetKind::kMnist;
  spec.hw = 20;
  spec.channels = 1;
  spec.train_count = 4;
  spec.test_count = 4;
  spec.seed = 80;
  const data::Dataset ds = data::make_synthetic(spec);
  capsnet::CapsNetConfig cfg = capsnet::CapsNetConfig::tiny();
  cfg.input_hw = 20;

  const std::string dir = ::testing::TempDir();
  Rng rng_a(41);
  capsnet::CapsNetModel model_a(cfg, rng_a);
  ASSERT_TRUE(capsnet::save_params(model_a, dir + "/a.rdcn"));
  core::DeploymentManifest ma =
      noisy_manifest(model_a, capsnet::slice_rows(ds.test_x, 0, 1));
  ma.checkpoint = "a.rdcn";
  ASSERT_TRUE(core::save_manifest(ma, dir + "/a.manifest"));

  Rng rng_b(42);
  capsnet::CapsNetModel model_b(cfg, rng_b);  // Different weights, same shape.
  ASSERT_TRUE(capsnet::save_params(model_b, dir + "/b.rdcn"));
  core::DeploymentManifest mb =
      noisy_manifest(model_b, capsnet::slice_rows(ds.test_x, 0, 1));
  mb.checkpoint = "b.rdcn";
  mb.noise_seed = 1234;
  ASSERT_TRUE(core::save_manifest(mb, dir + "/b.manifest"));

  std::unique_ptr<ModelRegistry> registry = ModelRegistry::open(dir + "/a.manifest");
  ASSERT_NE(registry, nullptr);
  const Tensor probe = capsnet::slice_rows(ds.test_x, 0, 2);
  const Tensor before = registry->run(kVariantExact, probe, 0).output;

  // Successful reload: serves B's weights afterwards.
  ASSERT_TRUE(registry->reload(dir + "/b.manifest"));
  EXPECT_EQ(registry->reloads_ok(), 1);
  EXPECT_EQ(registry->manifest().noise_seed, 1234U);
  const Tensor after = registry->run(kVariantExact, probe, 0).output;
  bool changed = false;
  for (std::int64_t i = 0; i < after.numel(); ++i) {
    if (after.at(i) != before.at(i)) changed = true;
  }
  EXPECT_TRUE(changed) << "reload did not swap in the new checkpoint";

  // Failed reload (truncated checkpoint): keeps serving B bit-for-bit.
  {
    std::FILE* f = std::fopen((dir + "/b.rdcn").c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    // Truncate by rewriting the file with its first 16 bytes only.
    char head[16];
    ASSERT_EQ(std::fread(head, 1, sizeof(head), f), sizeof(head));
    std::fclose(f);
    f = std::fopen((dir + "/b.rdcn").c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(head, 1, sizeof(head), f), sizeof(head));
    std::fclose(f);
  }
  EXPECT_FALSE(registry->reload(dir + "/b.manifest"));
  EXPECT_EQ(registry->reloads_failed(), 1);
  const Tensor rollback = registry->run(kVariantExact, probe, 0).output;
  for (std::int64_t i = 0; i < rollback.numel(); ++i) {
    ASSERT_EQ(rollback.at(i), after.at(i)) << "rollback changed served outputs at " << i;
  }

  // Reload to an incompatible input shape is refused even when valid.
  capsnet::CapsNetConfig cfg24 = capsnet::CapsNetConfig::tiny();
  cfg24.input_hw = 24;
  Rng rng_c(43);
  capsnet::CapsNetModel model_c(cfg24, rng_c);
  ASSERT_TRUE(capsnet::save_params(model_c, dir + "/c.rdcn"));
  core::DeploymentManifest mc;
  mc.model = "CapsNet";
  mc.profile = "tiny";
  mc.input_hw = 24;
  mc.input_channels = 1;
  mc.num_classes = 10;
  mc.checkpoint = "c.rdcn";
  ASSERT_TRUE(core::save_manifest(mc, dir + "/c.manifest"));
  EXPECT_FALSE(registry->reload(dir + "/c.manifest"));
  EXPECT_EQ(registry->reloads_failed(), 2);
}

TEST(Serve, AttackedEvalPredictionsIdenticalAcrossWorkerCounts) {
  const data::Dataset ds = small_dataset(16);
  std::unique_ptr<ModelRegistry> registry = make_registry(ds);
  const std::vector<std::int64_t> labels(ds.test_y.begin(), ds.test_y.end());

  for (const char* variant : {kVariantExact, kVariantDesigned, kVariantEmulated}) {
    AttackedEvalConfig cfg;
    cfg.variant = variant;
    cfg.spec_text = "fgsm:eps=0.05";
    cfg.attack_batch = 8;

    std::vector<AttackedEvalReport> reports;
    for (const int workers : {1, 2, 4}) {
      ServerConfig sc;
      sc.workers = workers;
      sc.max_batch = 4;
      sc.max_delay_us = 1000;
      InferenceServer server(*registry, sc);  // Not started: the eval pins
      const AttackedEvalReport rep =         // batch layout by submitting
          run_attacked_eval(server, *registry, ds.test_x, labels, cfg);  // first.
      server.shutdown();
      ASSERT_TRUE(rep.ok()) << variant << " workers=" << workers << ": "
                            << rep.error.detail;
      EXPECT_EQ(rep.request_errors, 0);
      EXPECT_EQ(rep.attack_key, attack::AttackSpec::fgsm(0.05).key());
      ASSERT_EQ(rep.labels.size(), static_cast<std::size_t>(16));
      reports.push_back(rep);
    }
    for (std::size_t w = 1; w < reports.size(); ++w) {
      EXPECT_EQ(reports[0].labels, reports[w].labels)
          << variant << ": predictions depend on worker count";
      EXPECT_EQ(reports[0].accuracy, reports[w].accuracy) << variant;
    }
  }
}

TEST(Serve, AttackedEvalRejectsMalformedSpecsWithTypedError) {
  const data::Dataset ds = small_dataset(4);
  std::unique_ptr<ModelRegistry> registry = make_registry(ds);
  const std::vector<std::int64_t> labels(ds.test_y.begin(), ds.test_y.end());
  ServerConfig sc;
  sc.workers = 1;

  // Malformed spec grammar: typed kBadAttackSpec, nothing submitted.
  for (const char* bad : {"fgsm", "fgsm:eps=-1", "warp:deg=5", "pgd:eps=0.1,steps=0"}) {
    InferenceServer server(*registry, sc);
    AttackedEvalConfig cfg;
    cfg.spec_text = bad;
    const AttackedEvalReport rep =
        run_attacked_eval(server, *registry, ds.test_x, labels, cfg);
    server.shutdown();
    EXPECT_FALSE(rep.ok()) << "accepted '" << bad << "'";
    EXPECT_EQ(rep.error.code, ServeErrorCode::kBadAttackSpec) << bad;
    EXPECT_FALSE(rep.error.detail.empty()) << bad;
    EXPECT_TRUE(rep.labels.empty()) << bad;
  }

  // Unknown variant: its own error code, not a spec error.
  {
    InferenceServer server(*registry, sc);
    AttackedEvalConfig cfg;
    cfg.variant = "warp-drive";
    cfg.spec_text = "fgsm:eps=0.05";
    const AttackedEvalReport rep =
        run_attacked_eval(server, *registry, ds.test_x, labels, cfg);
    server.shutdown();
    EXPECT_EQ(rep.error.code, ServeErrorCode::kUnknownVariant);
  }

  // Gradient attacks need one label per sample.
  {
    InferenceServer server(*registry, sc);
    AttackedEvalConfig cfg;
    cfg.spec_text = "fgsm:eps=0.05";
    const std::vector<std::int64_t> short_labels(labels.begin(), labels.begin() + 2);
    const AttackedEvalReport rep =
        run_attacked_eval(server, *registry, ds.test_x, short_labels, cfg);
    server.shutdown();
    EXPECT_EQ(rep.error.code, ServeErrorCode::kBadAttackSpec);
  }

  // The registry still serves normally after the rejections.
  InferenceServer server(*registry, sc);
  server.start();
  EXPECT_TRUE(server.submit(capsnet::slice_rows(ds.test_x, 0, 1), kVariantExact)
                  .get()
                  .ok());
  server.shutdown();
}

TEST(Serve, ConstForwardAuditPassesForBothModels) {
  const data::Dataset ds = small_dataset(4);
  Rng rng(31);
  capsnet::CapsNetModel capsnet_model(small_config(), rng);
  EXPECT_TRUE(capsnet::audit_const_forward(capsnet_model, ds.test_x));

  capsnet::DeepCapsConfig dc = capsnet::DeepCapsConfig::tiny();
  dc.input_hw = 8;
  data::SyntheticSpec s;
  s.kind = data::DatasetKind::kCifar10;
  s.hw = 8;
  s.channels = 3;
  s.train_count = 4;
  s.test_count = 4;
  s.seed = 78;
  Rng rng2(32);
  capsnet::DeepCapsModel deepcaps_model(dc, rng2);
  EXPECT_TRUE(capsnet::audit_const_forward(deepcaps_model, data::make_synthetic(s).test_x));
}

}  // namespace
}  // namespace redcane::serve
