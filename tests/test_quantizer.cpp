#include "quant/quantizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.hpp"
#include "tensor/random.hpp"

namespace redcane::quant {
namespace {

TEST(Quantizer, FitParamsCoversRange) {
  const Tensor t(Shape{4}, {-2.0F, 0.0F, 1.0F, 6.0F});
  const QuantParams p = fit_params(t, 8);
  EXPECT_DOUBLE_EQ(p.min, -2.0);
  EXPECT_DOUBLE_EQ(p.max, 6.0);
  EXPECT_EQ(p.max_code(), 255U);
}

TEST(Quantizer, DegenerateTensorGetsUnitRange) {
  const Tensor t(Shape{3}, 5.0F);
  const QuantParams p = fit_params(t, 8);
  EXPECT_GT(p.max, p.min);
  EXPECT_GT(p.step(), 0.0);
}

TEST(Quantizer, EndpointsMapToExtremes) {
  const Tensor t(Shape{2}, {-1.0F, 1.0F});
  const QuantParams p = fit_params(t, 8);
  const auto codes = quantize(t, p);
  EXPECT_EQ(codes[0], 0U);
  EXPECT_EQ(codes[1], 255U);
}

TEST(Quantizer, RoundTripErrorWithinHalfStep) {
  Rng rng(1);
  const Tensor t = ops::uniform(Shape{1000}, -3.0, 4.0, rng);
  const QuantParams p = fit_params(t, 8);
  const Tensor r = dequantize(quantize(t, p), t.shape(), p);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_LE(std::abs(t.at(i) - r.at(i)), p.step() * 0.5 + 1e-6);
  }
}

TEST(Quantizer, MoreBitsLessError) {
  Rng rng(2);
  const Tensor t = ops::uniform(Shape{2000}, 0.0, 1.0, rng);
  auto mse = [&](int bits) {
    const Tensor r = quantize_dequantize(t, bits);
    double e = 0.0;
    for (std::int64_t i = 0; i < t.numel(); ++i) {
      const double d = t.at(i) - r.at(i);
      e += d * d;
    }
    return e / static_cast<double>(t.numel());
  };
  EXPECT_GT(mse(4), mse(6));
  EXPECT_GT(mse(6), mse(8));
  EXPECT_GT(mse(8), mse(12));
}

TEST(Quantizer, U8ClampsTo255) {
  const Tensor t(Shape{2}, {0.0F, 1.0F});
  QuantParams p;
  p.min = 0.0;
  p.max = 1.0;
  p.bits = 12;  // Codes exceed 255.
  const auto u8 = quantize_u8(t, p);
  EXPECT_EQ(u8[1], 255U);
}

TEST(Quantizer, PaperEq1Form) {
  // Q(x) = (x - min)/(max - min) * (2^b - 1), checked midpoint.
  const Tensor t(Shape{3}, {0.0F, 0.5F, 1.0F});
  QuantParams p;
  p.min = 0.0;
  p.max = 1.0;
  p.bits = 8;
  const auto codes = quantize(t, p);
  EXPECT_EQ(codes[1], 128U);  // round(0.5 * 255) = 128.
}

}  // namespace
}  // namespace redcane::quant
