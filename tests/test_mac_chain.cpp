#include "approx/mac_chain.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "approx/library.hpp"
#include "tensor/random.hpp"

namespace redcane::approx {
namespace {

TEST(MacChain, ExactMultiplierGivesZeroError) {
  Rng rng(1);
  std::vector<std::uint8_t> a(81);
  std::vector<std::uint8_t> b(81);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<std::uint8_t>(rng.uniform_index(256));
    b[i] = static_cast<std::uint8_t>(rng.uniform_index(256));
  }
  const MacResult r = run_mac_chain(exact_multiplier(), a, b);
  EXPECT_EQ(r.error(), 0);
  EXPECT_EQ(r.approx, r.exact);
}

TEST(MacChain, SingleElementMatchesMultiplier) {
  const Multiplier& m = multiplier_by_name("axm_drum4_dm1");
  const std::vector<std::uint8_t> a{200};
  const std::vector<std::uint8_t> b{123};
  const MacResult r = run_mac_chain(m, a, b);
  EXPECT_EQ(r.approx, m.multiply(200, 123));
  EXPECT_EQ(r.exact, 200ULL * 123ULL);
}

TEST(MacChain, ErrorsAccumulateWithLength) {
  // For a biased component (result truncation), error grows ~linearly.
  const Multiplier& m = multiplier_by_name("axm_res8");
  Rng rng(2);
  auto mean_abs_error = [&](int len) {
    double sum = 0.0;
    const int trials = 300;
    std::vector<std::uint8_t> a(static_cast<std::size_t>(len));
    std::vector<std::uint8_t> b(a.size());
    for (int t = 0; t < trials; ++t) {
      for (std::size_t i = 0; i < a.size(); ++i) {
        a[i] = static_cast<std::uint8_t>(rng.uniform_index(256));
        b[i] = static_cast<std::uint8_t>(rng.uniform_index(256));
      }
      sum += std::abs(static_cast<double>(run_mac_chain(m, a, b).error()));
    }
    return sum / trials;
  };
  const double e1 = mean_abs_error(1);
  const double e9 = mean_abs_error(9);
  const double e81 = mean_abs_error(81);
  EXPECT_GT(e9, 3.0 * e1);
  EXPECT_GT(e81, 3.0 * e9);
}

TEST(MacChain, ApproxAdderAddsMoreError) {
  const Multiplier& exact_mul = exact_multiplier();
  const Adder& trunc = adder_by_name("axa_trunc6");
  Rng rng(3);
  std::vector<std::uint8_t> a(81);
  std::vector<std::uint8_t> b(81);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<std::uint8_t>(1 + rng.uniform_index(255));
    b[i] = static_cast<std::uint8_t>(1 + rng.uniform_index(255));
  }
  const MacResult with_exact_add = run_mac_chain(exact_mul, a, b);
  const MacResult with_trunc_add = run_mac_chain(exact_mul, trunc, a, b);
  EXPECT_EQ(with_exact_add.error(), 0);
  EXPECT_LT(with_trunc_add.error(), 0);  // Truncation bias, negative.
}

TEST(MacChain, EmptyChainIsZero) {
  const MacResult r = run_mac_chain(exact_multiplier(), {}, {});
  EXPECT_EQ(r.approx, 0U);
  EXPECT_EQ(r.exact, 0U);
}

}  // namespace
}  // namespace redcane::approx
