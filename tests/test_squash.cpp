#include "capsnet/squash.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.hpp"
#include "tensor/random.hpp"

namespace redcane::capsnet {
namespace {

double norm_of(const Tensor& t, std::int64_t row, std::int64_t d) {
  double s = 0.0;
  for (std::int64_t k = 0; k < d; ++k) {
    const double v = t.at(row * d + k);
    s += v * v;
  }
  return std::sqrt(s);
}

TEST(Squash, OutputLengthBelowOne) {
  Rng rng(1);
  const Tensor s = ops::uniform(Shape{50, 8}, -10.0, 10.0, rng);
  const Tensor v = squash(s);
  for (std::int64_t r = 0; r < 50; ++r) {
    EXPECT_LT(norm_of(v, r, 8), 1.0);
  }
}

TEST(Squash, PreservesDirection) {
  const Tensor s(Shape{1, 3}, {3.0F, 0.0F, 4.0F});
  const Tensor v = squash(s);
  // v parallel to s: cross ratios equal.
  EXPECT_NEAR(v.at(0) / s.at(0), v.at(2) / s.at(2), 1e-6);
  EXPECT_EQ(v.at(1), 0.0F);
  EXPECT_GT(v.at(0), 0.0F);
}

TEST(Squash, LengthIsMonotoneInInputNorm) {
  auto len_of = [](float scale) {
    const Tensor s(Shape{1, 2}, {scale, 0.0F});
    const Tensor v = squash(s);
    return std::abs(v.at(0));
  };
  EXPECT_LT(len_of(0.1F), len_of(0.5F));
  EXPECT_LT(len_of(0.5F), len_of(2.0F));
  EXPECT_LT(len_of(2.0F), len_of(10.0F));
}

TEST(Squash, KnownValue) {
  // |s| = 1 -> |v| = 1/2.
  const Tensor s(Shape{1, 1}, {1.0F});
  const Tensor v = squash(s);
  EXPECT_NEAR(v.at(0), 0.5F, 1e-5);
}

TEST(Squash, ZeroVectorStaysZero) {
  const Tensor s(Shape{1, 4});
  const Tensor v = squash(s);
  for (float x : v.data()) EXPECT_NEAR(x, 0.0F, 1e-6);
}

TEST(Squash, LargeInputApproachesUnitLength) {
  const Tensor s(Shape{1, 2}, {300.0F, 400.0F});
  const Tensor v = squash(s);
  EXPECT_NEAR(norm_of(v, 0, 2), 1.0, 1e-2);
}

TEST(SquashBackward, GradientCheck) {
  Rng rng(2);
  Tensor s = ops::uniform(Shape{4, 5}, -2.0, 2.0, rng);
  const Tensor v0 = squash(s);
  // L = 0.5 sum v^2 -> dL/dv = v.
  const Tensor grad_s = squash_backward(s, v0);
  auto loss_at = [&](std::int64_t idx, float eps) {
    const float saved = s.at(idx);
    s.at(idx) = saved + eps;
    const Tensor v = squash(s);
    s.at(idx) = saved;
    double l = 0.0;
    for (float x : v.data()) l += 0.5 * static_cast<double>(x) * x;
    return l;
  };
  for (std::int64_t idx = 0; idx < s.numel(); ++idx) {
    const double num = (loss_at(idx, 1e-3F) - loss_at(idx, -1e-3F)) / 2e-3;
    EXPECT_NEAR(grad_s.at(idx), num, 2e-3) << idx;
  }
}

TEST(SquashBackward, ShapeMatchesInput) {
  Rng rng(3);
  const Tensor s = ops::uniform(Shape{2, 3, 4}, -1.0, 1.0, rng);
  const Tensor g = ops::uniform(Shape{2, 3, 4}, -1.0, 1.0, rng);
  EXPECT_EQ(squash_backward(s, g).shape(), s.shape());
}

}  // namespace
}  // namespace redcane::capsnet
