// Per-thread workspace arena (tensor/workspace.hpp): alignment, scope
// rewind/reuse, growth without pointer invalidation, and thread keying —
// the properties the zero-allocation hot paths rely on.
#include "tensor/workspace.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <thread>

namespace redcane {
namespace {

TEST(Workspace, AllocationsAre64ByteAlignedAndDisjoint) {
  ws::Workspace w;
  const ws::Workspace::Scope scope(w);
  float* a = w.alloc<float>(100);
  float* b = w.alloc<float>(1);
  std::uint8_t* c = w.alloc<std::uint8_t>(3);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 64, 0U);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 64, 0U);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 64, 0U);
  // Writing one buffer end to end must not touch the others.
  for (int i = 0; i < 100; ++i) a[i] = 1.0F;
  *b = 2.0F;
  std::memset(c, 7, 3);
  EXPECT_EQ(a[99], 1.0F);
  EXPECT_EQ(*b, 2.0F);
  EXPECT_EQ(c[2], 7);
}

TEST(Workspace, ScopeRewindReusesMemoryWithoutGrowth) {
  ws::Workspace w;
  float* first = nullptr;
  {
    const ws::Workspace::Scope scope(w);
    first = w.alloc<float>(1000);
  }
  const std::size_t reserved = w.reserved_bytes();
  for (int round = 0; round < 100; ++round) {
    const ws::Workspace::Scope scope(w);
    float* p = w.alloc<float>(1000);
    EXPECT_EQ(p, first) << "rewound allocation must reuse the same memory";
  }
  EXPECT_EQ(w.reserved_bytes(), reserved) << "steady state must not grow";
}

TEST(Workspace, GrowthKeepsEarlierPointersValid) {
  ws::Workspace w;
  const ws::Workspace::Scope scope(w);
  float* small = w.alloc<float>(64);
  small[0] = 42.0F;
  // Far larger than the first block: forces a new block, which must not
  // move the existing allocation.
  float* big = w.alloc<float>(8u << 20);
  big[0] = 1.0F;
  big[(8u << 20) - 1] = 2.0F;
  EXPECT_EQ(small[0], 42.0F);
}

TEST(Workspace, NestedScopesStack) {
  ws::Workspace w;
  const ws::Workspace::Scope outer(w);
  float* a = w.alloc<float>(10);
  a[0] = 1.0F;
  float* inner_ptr = nullptr;
  {
    const ws::Workspace::Scope inner(w);
    inner_ptr = w.alloc<float>(10);
    EXPECT_NE(inner_ptr, a);
  }
  // After the inner scope rewinds, its slot is handed out again; the outer
  // allocation is untouched.
  float* again = w.alloc<float>(10);
  EXPECT_EQ(again, inner_ptr);
  EXPECT_EQ(a[0], 1.0F);
}

TEST(Workspace, TlsIsPerThread) {
  ws::Workspace* main_ws = &ws::Workspace::tls();
  ws::Workspace* other_ws = nullptr;
  std::thread t([&] { other_ws = &ws::Workspace::tls(); });
  t.join();
  EXPECT_NE(main_ws, other_ws);
  EXPECT_EQ(main_ws, &ws::Workspace::tls());
}

TEST(Workspace, ReserveIsIdempotentOnceCapacityCovers) {
  ws::Workspace w;
  w.reserve(1u << 16);
  const std::size_t after_first = w.reserved_bytes();
  EXPECT_GE(after_first, std::size_t{1} << 16);
  w.reserve(1u << 10);
  EXPECT_EQ(w.reserved_bytes(), after_first);
}

}  // namespace
}  // namespace redcane
