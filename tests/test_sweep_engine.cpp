// Sweep-engine contracts:
//  * parallel + prefix-cached sweeps are bit-identical to the serial
//    full-forward driver, across thread counts;
//  * a cached-prefix replay from any injection site matches a from-scratch
//    noisy forward exactly, for both model architectures;
//  * the engine's exploration-cost counters account for what was skipped.
#include "core/sweep_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>

#include "capsnet/capsnet_model.hpp"
#include "capsnet/deepcaps_model.hpp"
#include "capsnet/trainer.hpp"
#include "core/groups.hpp"
#include "core/resilience.hpp"
#include "data/synthetic.hpp"

namespace redcane::core {
namespace {

using capsnet::OpKind;

capsnet::CapsNetConfig small_capsnet_config() {
  capsnet::CapsNetConfig cfg;
  cfg.input_hw = 14;
  cfg.conv1_kernel = 5;
  cfg.conv1_channels = 8;
  cfg.primary_kernel = 5;
  cfg.primary_stride = 2;
  cfg.primary_types = 2;
  cfg.primary_dim = 4;
  cfg.class_dim = 4;
  return cfg;
}

capsnet::DeepCapsConfig small_deepcaps_config() {
  capsnet::DeepCapsConfig cfg = capsnet::DeepCapsConfig::tiny();
  cfg.input_hw = 8;
  return cfg;
}

data::Dataset small_dataset(std::int64_t hw, std::int64_t channels, std::int64_t count) {
  data::SyntheticSpec s;
  s.kind = channels == 1 ? data::DatasetKind::kMnist : data::DatasetKind::kCifar10;
  s.hw = hw;
  s.channels = channels;
  s.train_count = 4;  // Unused; the engine only reads the test split.
  s.test_count = count;
  s.seed = 99;
  return data::make_synthetic(s);
}

/// The pre-engine serial driver: one full-network evaluation per point.
double serial_point(capsnet::CapsModel& model, const data::Dataset& ds,
                    const std::vector<noise::InjectionRule>& rules, std::uint64_t seed,
                    std::uint64_t salt, std::int64_t batch) {
  noise::GaussianInjector injector(rules, seed ^ (salt * kSaltMix));
  return capsnet::evaluate(model, ds.test_x, ds.test_y, &injector, batch);
}

ResilienceCurve serial_sweep(capsnet::CapsModel& model, const data::Dataset& ds,
                             const ResilienceConfig& cfg, OpKind kind,
                             const std::optional<std::string>& layer) {
  ResilienceCurve curve;
  curve.kind = kind;
  curve.layer = layer;
  const double base = capsnet::evaluate(model, ds.test_x, ds.test_y, nullptr, cfg.eval_batch);
  std::uint64_t salt = 1;
  for (double nm : cfg.sweep.nms) {
    const noise::NoiseSpec spec{nm, cfg.sweep.na};
    std::vector<noise::InjectionRule> rules;
    if (layer.has_value()) {
      rules.push_back(noise::layer_rule(kind, *layer, spec));
    } else {
      rules.push_back(noise::group_rule(kind, spec));
    }
    const double acc = (nm == 0.0 && cfg.sweep.na == 0.0)
                           ? base
                           : serial_point(model, ds, rules, cfg.seed, salt++, cfg.eval_batch);
    curve.nms.push_back(nm);
    curve.drop_pct.push_back((acc - base) * 100.0);
  }
  return curve;
}

void expect_identical(const ResilienceCurve& a, const ResilienceCurve& b,
                      const std::string& what) {
  ASSERT_EQ(a.drop_pct.size(), b.drop_pct.size()) << what;
  for (std::size_t i = 0; i < a.drop_pct.size(); ++i) {
    EXPECT_EQ(a.drop_pct[i], b.drop_pct[i]) << what << " point " << i;
  }
}

ResilienceConfig quick_config(int threads, bool prefix_cache) {
  ResilienceConfig rc;
  rc.sweep.nms = {0.2, 0.02, 0.0};
  rc.seed = 17;
  rc.eval_batch = 16;
  rc.threads = threads;
  rc.prefix_cache = prefix_cache;
  return rc;
}

TEST(SweepEngine, ParallelCachedSweepsAreBitIdenticalToSerial) {
  Rng rng(5);
  capsnet::CapsNetModel model(small_capsnet_config(), rng);
  const data::Dataset ds = small_dataset(14, 1, 48);

  const int hw_threads =
      std::max(2, static_cast<int>(std::thread::hardware_concurrency()));
  for (const OpKind kind :
       {OpKind::kMacOutput, OpKind::kActivation, OpKind::kSoftmax, OpKind::kLogitsUpdate}) {
    const ResilienceCurve ref =
        serial_sweep(model, ds, quick_config(1, false), kind, std::nullopt);
    for (const int threads : {1, 2, hw_threads}) {
      for (const bool cache : {false, true}) {
        ResilienceAnalyzer analyzer(model, ds.test_x, ds.test_y,
                                    quick_config(threads, cache));
        const ResilienceCurve got = analyzer.sweep_group(kind);
        expect_identical(ref, got,
                         std::string(capsnet::op_kind_name(kind)) + " threads=" +
                             std::to_string(threads) + " cache=" + std::to_string(cache));
      }
    }
  }
}

TEST(SweepEngine, LayerSweepMatchesSerialAcrossThreadCounts) {
  Rng rng(6);
  capsnet::CapsNetModel model(small_capsnet_config(), rng);
  const data::Dataset ds = small_dataset(14, 1, 48);

  for (const std::string& layer : model.layer_names()) {
    const ResilienceCurve ref =
        serial_sweep(model, ds, quick_config(1, false), OpKind::kMacOutput, layer);
    ResilienceAnalyzer analyzer(model, ds.test_x, ds.test_y, quick_config(2, true));
    expect_identical(ref, analyzer.sweep_layer(OpKind::kMacOutput, layer), layer);
  }
}

/// Probes the model like the engine does: first stage emitting each site.
class SiteStageProbe final : public capsnet::PerturbationHook {
 public:
  void process(const std::string& layer, OpKind kind, Tensor&) override {
    for (const auto& [site, stage] : found) {
      if (site.first == layer && site.second == kind) return;
    }
    found.push_back({{layer, kind}, stage_});
  }
  int stage_ = 0;
  std::vector<std::pair<std::pair<std::string, OpKind>, int>> found;
};

void check_prefix_replay_exact(capsnet::CapsModel& model, const Tensor& x) {
  const int stages = model.num_stages();

  capsnet::StageState ckpt;
  ckpt.at.resize(static_cast<std::size_t>(stages) + 1);
  ckpt.at[0] = {x};
  const Tensor clean = model.forward_range(0, stages, ckpt, nullptr, /*record=*/true);

  // The segmented clean forward must match the plain forward bitwise.
  const Tensor clean_ref = model.forward(x, /*train=*/false, nullptr);
  ASSERT_EQ(clean.shape(), clean_ref.shape());
  for (std::int64_t i = 0; i < clean.numel(); ++i) {
    ASSERT_EQ(clean.at(i), clean_ref.at(i)) << "clean forward diverges at " << i;
  }

  SiteStageProbe probe;
  {
    capsnet::StageState st;
    st.at.resize(static_cast<std::size_t>(stages) + 1);
    st.at[0] = {capsnet::slice_rows(x, 0, 1)};
    for (int k = 0; k < stages; ++k) {
      probe.stage_ = k;
      (void)model.forward_range(k, k + 1, st, &probe, /*record=*/true);
    }
  }
  ASSERT_FALSE(probe.found.empty());

  const noise::NoiseSpec spec{0.1, 0.0};
  for (const auto& [site, stage] : probe.found) {
    const std::vector<noise::InjectionRule> rules{
        noise::layer_rule(site.second, site.first, spec)};

    noise::GaussianInjector scratch_injector(rules, 1234);
    const Tensor ref = model.forward(x, /*train=*/false, &scratch_injector);

    noise::GaussianInjector replay_injector(rules, 1234);
    capsnet::StageState st;
    st.at.resize(static_cast<std::size_t>(stages) + 1);
    st.at[static_cast<std::size_t>(stage)] = ckpt.at[static_cast<std::size_t>(stage)];
    const Tensor got = model.forward_range(stage, stages, st, &replay_injector, false);

    ASSERT_EQ(got.shape(), ref.shape());
    for (std::int64_t i = 0; i < got.numel(); ++i) {
      ASSERT_EQ(got.at(i), ref.at(i))
          << site.first << "/" << capsnet::op_kind_name(site.second)
          << " replayed from stage " << stage << " diverges at element " << i;
    }
    EXPECT_GT(replay_injector.injections(), 0)
        << site.first << "/" << capsnet::op_kind_name(site.second);
  }
}

TEST(SweepEngine, CapsNetPrefixReplayMatchesFromScratchAtEverySite) {
  Rng rng(7);
  capsnet::CapsNetModel model(small_capsnet_config(), rng);
  const data::Dataset ds = small_dataset(14, 1, 8);
  check_prefix_replay_exact(model, ds.test_x);
}

TEST(SweepEngine, DeepCapsPrefixReplayMatchesFromScratchAtEverySite) {
  Rng rng(8);
  capsnet::DeepCapsModel model(small_deepcaps_config(), rng);
  const data::Dataset ds = small_dataset(8, 3, 4);
  check_prefix_replay_exact(model, ds.test_x);
}

TEST(SweepEngine, StatsAccountForSkippedStages) {
  Rng rng(9);
  capsnet::CapsNetModel model(small_capsnet_config(), rng);
  const data::Dataset ds = small_dataset(14, 1, 32);

  SweepEngineConfig cfg;
  cfg.seed = 3;
  cfg.eval_batch = 16;
  cfg.threads = 1;
  SweepEngine engine(model, ds.test_x, ds.test_y, cfg);
  (void)engine.clean_accuracy();

  // Softmax sites live in the routing stage: nearly the whole network is a
  // cached prefix for this rule.
  const std::vector<noise::InjectionRule> rules{
      noise::group_rule(OpKind::kSoftmax, noise::NoiseSpec{0.1, 0.0})};
  (void)engine.point_accuracy(rules, 1);
  EXPECT_EQ(engine.stats().evaluations, 1);
  EXPECT_EQ(engine.stats().cache_hits, 2);  // Two test batches replayed.
  EXPECT_GT(engine.stats().stages_skipped, 0);
  EXPECT_EQ(engine.stats().stages_total, 2LL * model.num_stages());
  EXPECT_GT(engine.stats().skip_fraction(), 0.5);

  // MAC outputs start at stage 0: nothing can be skipped.
  SweepEngine engine2(model, ds.test_x, ds.test_y, cfg);
  const std::vector<noise::InjectionRule> mac_rules{
      noise::group_rule(OpKind::kMacOutput, noise::NoiseSpec{0.1, 0.0})};
  (void)engine2.point_accuracy(mac_rules, 1);
  EXPECT_EQ(engine2.stats().cache_hits, 0);
  EXPECT_EQ(engine2.stats().stages_skipped, 0);
}

/// Perturbs the whole test set in eval_batch chunks — the batch geometry
/// (and therefore attack generation) the engine uses.
Tensor attacked_test_set(capsnet::CapsModel& model, const data::Dataset& ds,
                         const attack::AttackSpec& spec, std::int64_t eval_batch) {
  const std::int64_t n = ds.test_x.shape().dim(0);
  Tensor out(ds.test_x.shape());
  const std::int64_t row = ds.test_x.numel() / n;
  for (std::int64_t at = 0; at < n; at += eval_batch) {
    const std::int64_t end = std::min(n, at + eval_batch);
    const std::vector<std::int64_t> labels(ds.test_y.begin() + at, ds.test_y.begin() + end);
    const Tensor adv =
        attack::apply_attack(model, capsnet::slice_rows(ds.test_x, at, end), labels, spec);
    std::memcpy(out.data().data() + at * row, adv.data().data(),
                static_cast<std::size_t>((end - at) * row) * sizeof(float));
  }
  return out;
}

/// The pre-engine serial Step-8 driver: every grid point regenerates the
/// perturbed set and runs a full evaluation, salts restarting at 1 per
/// severity row in grid order (matching ResilienceAnalyzer::sweep_attack_noise).
RobustnessGrid serial_attacked_grid(capsnet::CapsModel& model, const data::Dataset& ds,
                                    const ResilienceConfig& cfg,
                                    const attack::Scenario& scenario, OpKind group) {
  RobustnessGrid grid;
  grid.scenario = scenario.name();
  grid.backend = "noise";
  grid.nms = cfg.sweep.nms;
  for (double severity : scenario.severities) {
    const attack::AttackSpec spec = scenario.at(severity);
    grid.severities.push_back(severity);
    std::uint64_t salt = 1;
    for (double nm : cfg.sweep.nms) {
      const Tensor adv = attacked_test_set(model, ds, spec, cfg.eval_batch);
      if (nm == 0.0 && cfg.sweep.na == 0.0) {
        grid.accuracy.push_back(
            capsnet::evaluate(model, adv, ds.test_y, nullptr, cfg.eval_batch));
        continue;
      }
      const std::vector<noise::InjectionRule> rules{
          noise::group_rule(group, noise::NoiseSpec{nm, cfg.sweep.na})};
      noise::GaussianInjector injector(rules, cfg.seed ^ (salt++ * kSaltMix));
      grid.accuracy.push_back(
          capsnet::evaluate(model, adv, ds.test_y, &injector, cfg.eval_batch));
    }
  }
  return grid;
}

TEST(SweepEngine, AttackedSweepGridsAreBitIdenticalToSerial) {
  Rng rng(10);
  capsnet::CapsNetModel model(small_capsnet_config(), rng);
  const data::Dataset ds = small_dataset(14, 1, 48);

  attack::Scenario fgsm;
  fgsm.kind = attack::AttackKind::kFgsm;
  fgsm.severities = {0.05, 0.1};
  attack::Scenario rotate;
  rotate.kind = attack::AttackKind::kRotate;
  rotate.severities = {12.0};

  const int hw_threads =
      std::max(2, static_cast<int>(std::thread::hardware_concurrency()));
  for (const attack::Scenario& scenario : {fgsm, rotate}) {
    const RobustnessGrid ref = serial_attacked_grid(model, ds, quick_config(1, false),
                                                    scenario, OpKind::kMacOutput);
    for (const int threads : {1, 2, hw_threads}) {
      for (const bool cache : {false, true}) {
        ResilienceAnalyzer analyzer(model, ds.test_x, ds.test_y,
                                    quick_config(threads, cache));
        const RobustnessGrid got =
            analyzer.sweep_attack_noise(scenario, OpKind::kMacOutput);
        ASSERT_EQ(ref.accuracy.size(), got.accuracy.size());
        for (std::size_t i = 0; i < ref.accuracy.size(); ++i) {
          EXPECT_EQ(ref.accuracy[i], got.accuracy[i])
              << scenario.name() << " threads=" << threads << " cache=" << cache
              << " point " << i;
        }
      }
    }
  }
}

TEST(SweepEngine, PrefixReplayOnAttackedInputsMatchesFromScratchAtEverySite) {
  Rng rng(11);
  capsnet::CapsNetModel model(small_capsnet_config(), rng);
  const data::Dataset ds = small_dataset(14, 1, 8);

  // Replay exactness must hold on the perturbed eval sets the input-keyed
  // cache records, not just the clean set.
  const std::vector<std::int64_t> labels(ds.test_y.begin(), ds.test_y.end());
  const Tensor adv =
      attack::apply_attack(model, ds.test_x, labels, attack::AttackSpec::fgsm(0.1));
  check_prefix_replay_exact(model, adv);
}

TEST(SweepEngine, InputKeyedCacheReusesPerturbedSetsAcrossGridPoints) {
  Rng rng(12);
  capsnet::CapsNetModel model(small_capsnet_config(), rng);
  const data::Dataset ds = small_dataset(14, 1, 32);

  attack::Scenario fgsm;
  fgsm.kind = attack::AttackKind::kFgsm;
  fgsm.severities = {0.05, 0.1};

  ResilienceAnalyzer analyzer(model, ds.test_x, ds.test_y, quick_config(1, true));
  (void)analyzer.sweep_attack_noise(fgsm, OpKind::kMacOutput);
  const SweepEngineStats& stats = analyzer.engine_stats();
  // One perturbed set per severity row (built by the clean attacked point),
  // then each row's whole noise axis replays it in one run_attacked_points
  // lookup: 2 misses, 2 hits.
  EXPECT_EQ(stats.input_sets, 2);
  EXPECT_EQ(stats.input_cache_hits, 2);
  EXPECT_GT(stats.input_hit_rate(), 0.0);

  // The exact (noise-free) axis over the same scenario is served entirely
  // from the cache: no new sets, one more hit per severity.
  (void)analyzer.sweep_attack_exact(fgsm);
  EXPECT_EQ(analyzer.engine_stats().input_sets, 2);
  EXPECT_EQ(analyzer.engine_stats().input_cache_hits, 4);

  // Identity specs alias the clean base set and never touch the cache.
  SweepEngineConfig ec;
  ec.seed = 17;
  ec.eval_batch = 16;
  ec.threads = 1;
  SweepEngine engine(model, ds.test_x, ds.test_y, ec);
  const double clean = engine.clean_accuracy();
  EXPECT_EQ(engine.attacked_accuracy(attack::AttackSpec::none()), clean);
  EXPECT_EQ(engine.stats().input_sets, 0);
  EXPECT_EQ(engine.stats().input_cache_hits, 0);
}

TEST(SweepEngine, InputCacheLruBudgetEvictsAndRebuildsIdentically) {
  Rng rng(13);
  capsnet::CapsNetModel model(small_capsnet_config(), rng);
  const data::Dataset ds = small_dataset(14, 1, 24);

  SweepEngineConfig unbounded;
  unbounded.seed = 17;
  unbounded.eval_batch = 8;
  unbounded.threads = 1;
  SweepEngineConfig bounded = unbounded;
  bounded.input_cache_budget = 1;  // Evict every set the moment it is idle.

  SweepEngine big(model, ds.test_x, ds.test_y, unbounded);
  SweepEngine lru(model, ds.test_x, ds.test_y, bounded);

  const std::vector<attack::AttackSpec> specs = {attack::AttackSpec::fgsm(0.05),
                                                 attack::AttackSpec::fgsm(0.1),
                                                 attack::AttackSpec::fgsm(0.2)};
  // Two rounds: the second revisits every spec, forcing the bounded engine
  // to rebuild evicted sets — bitwise identically (attacks are RNG-free).
  for (int round = 0; round < 2; ++round) {
    for (const attack::AttackSpec& spec : specs) {
      EXPECT_EQ(lru.attacked_accuracy(spec), big.attacked_accuracy(spec))
          << "round " << round << " severity " << spec.severity;
    }
  }

  EXPECT_EQ(big.stats().input_evictions, 0);
  EXPECT_EQ(big.stats().input_sets, 3);  // Round two fully cached.
  EXPECT_GT(lru.stats().input_evictions, 0);
  EXPECT_GT(lru.stats().input_sets, 3);  // Evicted sets were rebuilt.
  // The budget bounds steady-state memory: at most one idle set survives.
  EXPECT_LT(lru.stats().input_cache_bytes, big.stats().input_cache_bytes);
}

TEST(SweepEngine, ThreadResolutionHonorsEnvOverride) {
  ::setenv("REDCANE_SWEEP_THREADS", "3", 1);
  EXPECT_EQ(SweepEngine::resolve_threads(0), 3);
  EXPECT_EQ(SweepEngine::resolve_threads(5), 5);  // Explicit config wins.
  ::unsetenv("REDCANE_SWEEP_THREADS");
  EXPECT_GE(SweepEngine::resolve_threads(0), 1);
}

}  // namespace
}  // namespace redcane::core
