#include "nn/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace redcane::nn {
namespace {

/// Minimize f(w) = 0.5 * ||w - target||^2 with gradient w - target.
void run_quadratic(Optimizer& opt, Param& p, const Tensor& target, int steps) {
  for (int s = 0; s < steps; ++s) {
    for (std::int64_t i = 0; i < p.value.numel(); ++i) {
      p.grad.at(i) = p.value.at(i) - target.at(i);
    }
    opt.step({&p});
  }
}

TEST(Sgd, ConvergesOnQuadratic) {
  Param p("w", Tensor(Shape{4}, 5.0F));
  const Tensor target(Shape{4}, {1.0F, -2.0F, 0.5F, 3.0F});
  Sgd opt(0.1, 0.9);
  run_quadratic(opt, p, target, 200);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_NEAR(p.value.at(i), target.at(i), 1e-3);
}

TEST(Adam, ConvergesOnQuadratic) {
  Param p("w", Tensor(Shape{4}, 5.0F));
  const Tensor target(Shape{4}, {1.0F, -2.0F, 0.5F, 3.0F});
  Adam opt(0.1);
  run_quadratic(opt, p, target, 500);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_NEAR(p.value.at(i), target.at(i), 1e-2);
}

TEST(Optimizers, StepZeroesGradients) {
  Param p("w", Tensor(Shape{2}, 1.0F));
  p.grad.fill(3.0F);
  Adam opt(0.01);
  opt.step({&p});
  for (float g : p.grad.data()) EXPECT_EQ(g, 0.0F);
}

TEST(Sgd, MomentumAcceleratesDescent) {
  const Tensor target(Shape{1}, 0.0F);
  Param slow("a", Tensor(Shape{1}, 10.0F));
  Param fast("b", Tensor(Shape{1}, 10.0F));
  Sgd no_mom(0.01, 0.0);
  Sgd mom(0.01, 0.9);
  run_quadratic(no_mom, slow, target, 50);
  run_quadratic(mom, fast, target, 50);
  EXPECT_LT(std::abs(fast.value.at(0)), std::abs(slow.value.at(0)));
}

TEST(Adam, FirstStepIsLrSized) {
  Param p("w", Tensor(Shape{1}, 1.0F));
  p.grad.at(0) = 100.0F;  // Magnitude is normalized away by Adam.
  Adam opt(0.05);
  opt.step({&p});
  EXPECT_NEAR(p.value.at(0), 1.0F - 0.05F, 1e-4);
}

}  // namespace
}  // namespace redcane::nn
