#include <gtest/gtest.h>

#include <cmath>

#include "noise/injector.hpp"
#include "noise/noise_model.hpp"
#include "noise/range_recorder.hpp"
#include "tensor/ops.hpp"
#include "tensor/stats.hpp"

namespace redcane::noise {
namespace {

using capsnet::OpKind;

TEST(NoiseModel, ZeroSpecIsIdentity) {
  Rng rng(1);
  Tensor x = ops::uniform(Shape{100}, -1.0, 1.0, rng);
  const Tensor before = x;
  Rng nrng(2);
  inject_noise(x, NoiseSpec{0.0, 0.0}, nrng);
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_EQ(x.at(i), before.at(i));
}

TEST(NoiseModel, StatisticsMatchEq3) {
  // X' - X must have std ~= NM * R(X) and mean ~= NA * R(X).
  Rng rng(3);
  Tensor x = ops::uniform(Shape{200000}, -2.0, 6.0, rng);  // R ~= 8.
  const Tensor before = x;
  const stats::Moments mx = stats::moments(before);
  Rng nrng(4);
  const NoiseSpec spec{0.05, 0.01};
  inject_noise(x, spec, nrng);
  const Tensor delta = ops::sub(x, before);
  const stats::Moments md = stats::moments(delta);
  EXPECT_NEAR(md.stddev, spec.nm * mx.range(), 0.01);
  EXPECT_NEAR(md.mean, spec.na * mx.range(), 0.01);
}

TEST(NoiseModel, ConstantTensorUntouched) {
  Tensor x(Shape{10}, 3.0F);  // R(X) = 0.
  Rng nrng(5);
  inject_noise(x, NoiseSpec{0.5, 0.5}, nrng);
  for (float v : x.data()) EXPECT_EQ(v, 3.0F);
}

TEST(NoiseModel, NoiseScalesWithRange) {
  Rng rng(6);
  Tensor small = ops::uniform(Shape{50000}, 0.0, 1.0, rng);
  Tensor large = ops::uniform(Shape{50000}, 0.0, 100.0, rng);
  const Tensor small0 = small;
  const Tensor large0 = large;
  Rng r1(7);
  Rng r2(7);
  inject_noise(small, NoiseSpec{0.1, 0.0}, r1);
  inject_noise(large, NoiseSpec{0.1, 0.0}, r2);
  const double sd_small = stats::moments(ops::sub(small, small0)).stddev;
  const double sd_large = stats::moments(ops::sub(large, large0)).stddev;
  EXPECT_NEAR(sd_large / sd_small, 100.0, 5.0);
}

TEST(Injector, GroupRuleHitsOnlyItsKind) {
  GaussianInjector inj({group_rule(OpKind::kSoftmax, NoiseSpec{0.2, 0.0})}, 1);
  Rng rng(8);
  Tensor a = ops::uniform(Shape{100}, 0.0, 1.0, rng);
  const Tensor a0 = a;
  inj.process("any", OpKind::kMacOutput, a);
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a.at(i), a0.at(i));
  inj.process("any", OpKind::kSoftmax, a);
  double diff = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) diff += std::abs(a.at(i) - a0.at(i));
  EXPECT_GT(diff, 0.0);
  EXPECT_EQ(inj.injections(), 1);
  EXPECT_EQ(inj.sites_visited(), 2);
}

TEST(Injector, LayerRuleHitsOnlyItsLayer) {
  GaussianInjector inj({layer_rule(OpKind::kMacOutput, "Caps2D3", NoiseSpec{0.2, 0.0})}, 2);
  Rng rng(9);
  Tensor a = ops::uniform(Shape{64}, 0.0, 1.0, rng);
  const Tensor a0 = a;
  inj.process("Caps2D2", OpKind::kMacOutput, a);
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a.at(i), a0.at(i));
  inj.process("Caps2D3", OpKind::kMacOutput, a);
  EXPECT_EQ(inj.injections(), 1);
}

TEST(Injector, FirstMatchingRuleWins) {
  GaussianInjector inj(
      {layer_rule(OpKind::kMacOutput, "L1", NoiseSpec{0.0, 0.0}),  // Explicit no-noise.
       group_rule(OpKind::kMacOutput, NoiseSpec{0.5, 0.0})},
      3);
  Rng rng(10);
  Tensor a = ops::uniform(Shape{64}, 0.0, 1.0, rng);
  const Tensor a0 = a;
  inj.process("L1", OpKind::kMacOutput, a);
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a.at(i), a0.at(i));
  EXPECT_EQ(inj.injections(), 0);
}

TEST(Injector, DeterministicForSeed) {
  Rng rng(11);
  const Tensor base = ops::uniform(Shape{64}, 0.0, 1.0, rng);
  Tensor a = base;
  Tensor b = base;
  GaussianInjector inj_a({group_rule(OpKind::kActivation, NoiseSpec{0.1, 0.0})}, 42);
  GaussianInjector inj_b({group_rule(OpKind::kActivation, NoiseSpec{0.1, 0.0})}, 42);
  inj_a.process("x", OpKind::kActivation, a);
  inj_b.process("x", OpKind::kActivation, b);
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a.at(i), b.at(i));
}

TEST(RangeRecorderTest, MomentsAndReservoir) {
  RangeRecorder rec(100, 1);
  Rng rng(12);
  Tensor x = ops::uniform(Shape{1000}, -1.0, 3.0, rng);
  rec.process("conv", OpKind::kActivation, x);
  const SiteRecord& r = rec.record("conv", OpKind::kActivation);
  EXPECT_EQ(r.count, 1000);
  EXPECT_EQ(r.reservoir.size(), 100U);
  const stats::Moments m = r.moments();
  EXPECT_NEAR(m.mean, 1.0, 0.1);
  EXPECT_GT(m.max, 2.5);
  EXPECT_LT(m.min, -0.5);
}

TEST(RangeRecorderTest, PooledSamplesMergeSitesOfKind) {
  RangeRecorder rec(50, 2);
  Rng rng(13);
  Tensor a = ops::uniform(Shape{100}, 0.0, 1.0, rng);
  Tensor b = ops::uniform(Shape{100}, 0.0, 1.0, rng);
  rec.process("l1", OpKind::kActivation, a);
  rec.process("l2", OpKind::kActivation, b);
  rec.process("l3", OpKind::kSoftmax, a);
  EXPECT_EQ(rec.pooled_samples(OpKind::kActivation).size(), 100U);
  EXPECT_EQ(rec.pooled_samples(OpKind::kSoftmax).size(), 50U);
}

TEST(RangeRecorderTest, DoesNotPerturb) {
  RangeRecorder rec;
  Rng rng(14);
  Tensor x = ops::uniform(Shape{64}, 0.0, 1.0, rng);
  const Tensor x0 = x;
  rec.process("l", OpKind::kMacOutput, x);
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_EQ(x.at(i), x0.at(i));
}

}  // namespace
}  // namespace redcane::noise
