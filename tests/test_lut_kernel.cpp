// Dispatched LUT-GEMM microkernel contracts (tensor/lut_kernel +
// quant/lut_cache):
//  * every dispatch tier reproduces the retained scalar kernels bitwise —
//    all accumulator outputs, across tail shapes (k/m/n off the lane
//    widths), null and random masks, all-valid and all-masked rows, and
//    both real product tables (exact = all nibble rows, drum = mixed);
//  * the approximate-adder chain driver is bit-for-bit the seed chain
//    kernel under every tier (SIMD staging must not touch chain order);
//  * LutTables::build proves nibble decomposition per row (never falsely)
//    and derives a flush cadence that keeps u32 partials exact even for
//    pathological table values;
//  * forcing an unsupported target is rejected without changing dispatch;
//  * the process-wide LUT cache hits on repeated (multiplier, bits) keys,
//    separates wordlengths, is race-free on first touch, and drops entries
//    of plan-owned multipliers when the EmulationPlan dies.
#include "tensor/lut_kernel.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "approx/library.hpp"
#include "backend/emulation.hpp"
#include "quant/lut_cache.hpp"
#include "quant/lut_gemm.hpp"
#include "tensor/gemm.hpp"
#include "tensor/random.hpp"

namespace redcane::gemm::lk {
namespace {

class ExactAccum final : public gemm::U32Accum {
 public:
  [[nodiscard]] std::uint32_t add(std::uint32_t a, std::uint32_t b) const override {
    return a + b;
  }
};

class AdderAccum final : public gemm::U32Accum {
 public:
  explicit AdderAccum(const approx::Adder& a) : a_(a) {}
  [[nodiscard]] std::uint32_t add(std::uint32_t x, std::uint32_t y) const override {
    return a_.add(x, y);
  }

 private:
  const approx::Adder& a_;
};

/// Restores float+LUT dispatch on scope exit (force repoints both).
class DispatchGuard {
 public:
  DispatchGuard() : saved_(mk::active().target) {}
  ~DispatchGuard() { mk::force(saved_); }

 private:
  mk::Target saved_;
};

std::vector<mk::Target> supported_targets() {
  std::vector<mk::Target> out;
  for (const mk::Target t : {mk::Target::kScalar, mk::Target::kSse, mk::Target::kAvx2}) {
    if (mk::supported(t)) out.push_back(t);
  }
  return out;
}

struct CodeProblem {
  std::int64_t m = 0;
  std::int64_t n = 0;
  std::int64_t k = 0;
  std::vector<std::uint8_t> a;
  std::vector<std::uint8_t> b;
  std::vector<std::uint8_t> mask;  ///< Empty = null mask.
};

CodeProblem make_problem(std::int64_t m, std::int64_t n, std::int64_t k, int mask_kind,
                         std::uint64_t seed) {
  CodeProblem p;
  p.m = m;
  p.n = n;
  p.k = k;
  Rng rng(seed);
  p.a.resize(static_cast<std::size_t>(m * k));
  p.b.resize(static_cast<std::size_t>(k * n));
  for (auto& v : p.a) v = static_cast<std::uint8_t>(rng.next_u64() % 256);
  for (auto& v : p.b) v = static_cast<std::uint8_t>(rng.next_u64() % 256);
  if (mask_kind == 1) {  // Random taps; row 0 forced all-valid, row m-1 all-masked.
    p.mask.resize(static_cast<std::size_t>(m * k));
    for (auto& v : p.mask) v = static_cast<std::uint8_t>(rng.next_u64() % 2);
    for (std::int64_t kk = 0; kk < k; ++kk) {
      p.mask[static_cast<std::size_t>(kk)] = 1;
      p.mask[static_cast<std::size_t>((m - 1) * k + kk)] = 0;
    }
  } else if (mask_kind == 2) {  // All-ones mask (must equal the null mask).
    p.mask.assign(static_cast<std::size_t>(m * k), 1);
  }
  return p;
}

void expect_tiers_match_oracle(const CodeProblem& p, const std::uint32_t* raw,
                               const LutTables& tables, const char* tag) {
  // The exact-adder chain runs the 32-bit accumulator datapath, so it can
  // only be compared to the u64 kernel when row sums cannot wrap.
  const bool chain_fits_u32 =
      static_cast<std::uint64_t>(tables.max_value) * static_cast<std::uint64_t>(p.k) <
      (1ULL << 32);
  const std::uint8_t* mask = p.mask.empty() ? nullptr : p.mask.data();
  const std::size_t mn = static_cast<std::size_t>(p.m * p.n);
  const std::size_t ms = static_cast<std::size_t>(p.m);

  std::vector<std::uint64_t> qq_o(mn);
  std::vector<std::uint64_t> qw_o(mn);
  std::vector<std::uint64_t> qa_o(ms);
  std::vector<std::int64_t> taps_o(ms);
  gemm::gemm_u8_lut(p.m, p.n, p.k, p.a.data(), mask, p.b.data(), raw, qq_o.data(),
                    qw_o.data(), qa_o.data(), taps_o.data());

  std::vector<std::uint32_t> cq_o(mn);
  const AdderAccum trunc(approx::adder_by_name("axa_trunc6"));
  std::vector<std::uint64_t> cw_o(mn);
  std::vector<std::uint64_t> ca_o(ms);
  std::vector<std::int64_t> ctaps_o(ms);
  gemm::gemm_u8_lut_chain(p.m, p.n, p.k, p.a.data(), mask, p.b.data(), raw, trunc,
                          cq_o.data(), cw_o.data(), ca_o.data(), ctaps_o.data());

  const DispatchGuard guard;
  for (const mk::Target t : supported_targets()) {
    ASSERT_TRUE(mk::force(t));
    SCOPED_TRACE(std::string(tag) + " tier=" + ops_for(t).name);

    std::vector<std::uint64_t> qq(mn, 0xAA);
    std::vector<std::uint64_t> qw(mn, 0xAA);
    std::vector<std::uint64_t> qa(ms, 0xAA);
    std::vector<std::int64_t> taps(ms, -1);
    lut_gemm_u8(p.m, p.n, p.k, p.a.data(), mask, p.b.data(), tables, qq.data(), qw.data(),
                qa.data(), taps.data());
    EXPECT_EQ(qq, qq_o);
    EXPECT_EQ(qw, qw_o);
    EXPECT_EQ(qa, qa_o);
    EXPECT_EQ(taps, taps_o);

    std::vector<std::uint32_t> cq(mn, 0xAA);
    std::vector<std::uint64_t> cw(mn, 0xAA);
    std::vector<std::uint64_t> ca(ms, 0xAA);
    std::vector<std::int64_t> ctaps(ms, -1);
    lut_gemm_u8_chain(p.m, p.n, p.k, p.a.data(), mask, p.b.data(), tables, trunc, cq.data(),
                      cw.data(), ca.data(), ctaps.data());
    EXPECT_EQ(cq, cq_o);
    EXPECT_EQ(cw, cw_o);
    EXPECT_EQ(ca, ca_o);
    EXPECT_EQ(ctaps, ctaps_o);

    // An exact-adder chain equals the exact kernel's sums whenever they
    // fit the 32-bit accumulator it models, tier by tier.
    if (chain_fits_u32) {
      const ExactAccum exact;
      lut_gemm_u8_chain(p.m, p.n, p.k, p.a.data(), mask, p.b.data(), tables, exact,
                        cq.data(), cw.data(), ca.data(), ctaps.data());
      for (std::size_t i = 0; i < mn; ++i) {
        ASSERT_EQ(static_cast<std::uint64_t>(cq[i]), qq_o[i]) << "exact chain qq at " << i;
      }
    }
  }
}

TEST(LutKernel, AllTiersMatchScalarOracleAcrossShapesMasksAndTables) {
  std::vector<std::uint32_t> lut_exact(256 * 256);
  quant::build_product_lut(nullptr, lut_exact.data());
  const LutTables t_exact = LutTables::build(lut_exact.data());

  std::vector<std::uint32_t> lut_drum(256 * 256);
  quant::build_product_lut(&approx::multiplier_by_name("axm_drum4_dm1"), lut_drum.data());
  const LutTables t_drum = LutTables::build(lut_drum.data());

  // Shapes straddle the lane widths: n in {1, 5, 16, 33, 40} exercises the
  // 32/16-lane bodies and every tail, k odd exercises tap loops, m = 1
  // exercises the no-parallel edge.
  const std::int64_t shapes[][3] = {{7, 5, 23}, {3, 33, 17}, {1, 1, 1},
                                    {5, 64, 48}, {2, 40, 9}, {4, 16, 31}};
  for (const auto& s : shapes) {
    for (int mask_kind = 0; mask_kind < 3; ++mask_kind) {
      const CodeProblem p =
          make_problem(s[0], s[1], s[2], mask_kind, 1000 + static_cast<std::uint64_t>(
                                                              s[0] * 31 + s[1] + mask_kind));
      SCOPED_TRACE("shape " + std::to_string(s[0]) + "x" + std::to_string(s[1]) + "x" +
                   std::to_string(s[2]) + " mask_kind=" + std::to_string(mask_kind));
      expect_tiers_match_oracle(p, lut_exact.data(), t_exact, "exact");
      expect_tiers_match_oracle(p, lut_drum.data(), t_drum, "drum4");
    }
  }
}

TEST(LutKernel, NibbleDecompositionProvenExactlyPerRow) {
  std::vector<std::uint32_t> lut_exact(256 * 256);
  quant::build_product_lut(nullptr, lut_exact.data());
  const LutTables t_exact = LutTables::build(lut_exact.data());
  // a*b = a*(b>>4)*16 + a*(b&15), both halves <= 255*15*16 < 2^16: every
  // exact row decomposes.
  EXPECT_TRUE(t_exact.any_nibble);
  for (int r = 0; r < 256; ++r) EXPECT_EQ(t_exact.nibble_ok[static_cast<std::size_t>(r)], 1);
  EXPECT_EQ(t_exact.max_value, 255u * 255u);

  // Synthetic mixed table: even rows r*b (decomposable), odd rows carry a
  // nibble cross term (l & 1) * h that no H[h] + L[l] split can express.
  std::vector<std::uint32_t> mixed(256 * 256);
  for (int r = 0; r < 256; ++r) {
    for (int b = 0; b < 256; ++b) {
      const std::uint32_t base = static_cast<std::uint32_t>(r * b);
      mixed[static_cast<std::size_t>((r << 8) | b)] =
          (r % 2 == 0) ? base
                       : base + static_cast<std::uint32_t>((b & 1) * (b >> 4));
    }
  }
  const LutTables t_mixed = LutTables::build(mixed.data());
  for (int r = 0; r < 256; ++r) {
    EXPECT_EQ(t_mixed.nibble_ok[static_cast<std::size_t>(r)], r % 2 == 0 ? 1 : 0)
        << "row " << r;
  }

  // Restricting max_code can make a row decomposable that is not at 255:
  // the odd rows above are linear over b in [0, 15] (the cross term needs
  // h > 0). At 4-bit codes every row must decompose.
  const LutTables t_mixed4 = LutTables::build(mixed.data(), 15);
  for (int r = 0; r < 16; ++r) {
    EXPECT_EQ(t_mixed4.nibble_ok[static_cast<std::size_t>(r)], 1) << "row " << r;
  }

  // The mixed table still runs bitwise-equal through every tier.
  const CodeProblem p = make_problem(5, 37, 29, 1, 77);
  expect_tiers_match_oracle(p, mixed.data(), t_mixed, "mixed");
}

TEST(LutKernel, HugeTableValuesFlushBeforeU32Wrap) {
  // Constant 2^30 entries: flush_every collapses to 3, so a k = 50 row sum
  // (50 * 2^30 > 2^32) is only correct if the SIMD tiers flush their u32
  // partials on the derived cadence. L[0] alone exceeds u16, so no row
  // decomposes and the general (gather) path carries the whole test.
  std::vector<std::uint32_t> huge(256 * 256, 1u << 30);
  const LutTables t = LutTables::build(huge.data());
  EXPECT_FALSE(t.any_nibble);
  EXPECT_EQ(t.max_value, 1u << 30);
  EXPECT_EQ(t.flush_every, 3);

  const CodeProblem p = make_problem(3, 21, 50, 0, 9);
  expect_tiers_match_oracle(p, huge.data(), t, "huge");

  // All-zero table: cadence falls back to the code-side clamp.
  std::vector<std::uint32_t> zero(256 * 256, 0);
  const LutTables tz = LutTables::build(zero.data());
  EXPECT_EQ(tz.max_value, 0u);
  EXPECT_EQ(tz.flush_every, 16843009);
}

TEST(LutKernel, ForcedTargetRejectionAndTierNames) {
  const DispatchGuard guard;
  for (const mk::Target t : {mk::Target::kScalar, mk::Target::kSse, mk::Target::kAvx2}) {
    if (mk::supported(t)) {
      EXPECT_TRUE(mk::force(t));
      EXPECT_EQ(ops_for(t).target, t);
      EXPECT_EQ(&active(), &ops_for(t));
    } else {
      const mk::Target before = mk::active().target;
      EXPECT_FALSE(mk::force(t));  // Rejected without faulting...
      EXPECT_EQ(mk::active().target, before);  // ...and dispatch unchanged.
    }
  }
  EXPECT_STREQ(ops_for(mk::Target::kScalar).name, "scalar");
#if defined(__x86_64__) || defined(__i386__)
  EXPECT_STREQ(ops_for(mk::Target::kSse).name, "ssse3");
  EXPECT_STREQ(ops_for(mk::Target::kAvx2).name, "avx2");
#endif
}

TEST(LutCache, HitsMissesWordlengthsAndConcurrentFirstTouch) {
  quant::lut_cache_clear();
  quant::lut_cache_reset_stats();

  const LutTables& a = quant::lut_cache_get(nullptr, 8);
  const LutTables& b = quant::lut_cache_get(&approx::exact_multiplier(), 8);
  EXPECT_EQ(&a, &b);  // Null normalizes to the exact component.
  const LutTables& c = quant::lut_cache_get(nullptr, 6);
  EXPECT_NE(&a, &c);  // Wordlength is part of the key.
  quant::LutCacheStats s = quant::lut_cache_stats();
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.entries, 2u);

  // Concurrent first touch of one new key: exactly one build wins, every
  // thread sees the same entry.
  quant::lut_cache_clear();
  quant::lut_cache_reset_stats();
  const approx::Multiplier& drum = approx::multiplier_by_name("axm_drum4_dm1");
  std::vector<const LutTables*> seen(8, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(seen.size());
  for (std::size_t i = 0; i < seen.size(); ++i) {
    threads.emplace_back([&, i] { seen[i] = &quant::lut_cache_get(&drum, 8); });
  }
  for (auto& th : threads) th.join();
  for (const LutTables* p : seen) EXPECT_EQ(p, seen[0]);
  s = quant::lut_cache_stats();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.hits + s.misses, seen.size());
  EXPECT_GE(s.misses, 1u);  // Racing losers may also count as builds-then-hits.
}

TEST(LutCache, PlanScopedInvalidationDropsCallerOwnedEntries) {
  // A multiplier the component library does not own (behaviorally exact,
  // but a distinct cache identity).
  class LocalMul final : public approx::Multiplier {
   public:
    LocalMul() : approx::Multiplier({"test_local_mul", "exact", 0, "", 0.0, 0.0}) {}
    [[nodiscard]] std::uint32_t multiply(std::uint8_t a, std::uint8_t b) const override {
      return static_cast<std::uint32_t>(a) * b;
    }
  };

  quant::lut_cache_clear();
  quant::lut_cache_reset_stats();
  auto local = std::make_unique<LocalMul>();
  {
    backend::EmulationPlan plan;
    backend::SiteUnit site;
    site.unit.mul = local.get();
    plan.set("Conv1", site);
    (void)quant::lut_cache_get(local.get(), 8);
    (void)quant::lut_cache_get(nullptr, 8);  // Library entry, must survive.
    EXPECT_EQ(quant::lut_cache_stats().entries, 2u);
  }  // ~EmulationPlan: the plan-owned multiplier's entry is dropped.
  EXPECT_EQ(quant::lut_cache_stats().entries, 1u);

  // Library components are never plan-invalidated.
  {
    backend::EmulationPlan plan;
    ASSERT_TRUE(plan.set_by_name("Conv1", "axm_drum4_dm1"));
    (void)quant::lut_cache_get(&approx::multiplier_by_name("axm_drum4_dm1"), 8);
    EXPECT_EQ(quant::lut_cache_stats().entries, 2u);
  }
  EXPECT_EQ(quant::lut_cache_stats().entries, 2u);

  // Manual invalidation for callers not routing through a plan.
  (void)quant::lut_cache_get(local.get(), 8);
  EXPECT_EQ(quant::lut_cache_stats().entries, 3u);
  quant::lut_cache_invalidate(local.get());
  EXPECT_EQ(quant::lut_cache_stats().entries, 2u);
}

}  // namespace
}  // namespace redcane::gemm::lk
