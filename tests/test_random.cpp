#include "tensor/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace redcane {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(11);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5000; ++i) ++counts[rng.uniform_index(5)];
  for (int c : counts) EXPECT_GT(c, 800);
}

TEST(Rng, NormalMomentsCloseToStandard) {
  Rng rng(13);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(3.0, 0.5);
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(19);
  Rng child = parent.fork();
  // The child must not replay the parent's stream.
  Rng parent2(19);
  (void)parent2.next_u64();  // Fork consumed one draw.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next_u64() == parent2.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace redcane
