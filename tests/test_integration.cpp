// Cross-module integration tests: trained model -> methodology -> design
// -> joint injection -> energy, and serialization of stateful (BN) models.
#include <gtest/gtest.h>

#include <memory>

#include "capsnet/deepcaps_model.hpp"
#include "capsnet/serialize.hpp"
#include "capsnet/trainer.hpp"
#include "core/methodology.hpp"
#include "data/synthetic.hpp"
#include "energy/energy_model.hpp"
#include "noise/injector.hpp"

namespace redcane {
namespace {

/// Small trained DeepCaps shared across the integration tests.
struct DeepFixture {
  std::unique_ptr<capsnet::DeepCapsModel> model;
  data::Dataset ds;

  DeepFixture() {
    Rng rng(3);
    model = std::make_unique<capsnet::DeepCapsModel>(capsnet::DeepCapsConfig::tiny(), rng);
    ds = data::make_benchmark(data::DatasetKind::kCifar10, 16, 300, 100, 55);
    capsnet::TrainConfig tc;
    tc.epochs = 5;
    tc.batch_size = 25;
    tc.lr = 3e-3;
    capsnet::train(*model, ds.train_x, ds.train_y, tc);
  }
};

DeepFixture& fixture() {
  static DeepFixture f;
  return f;
}

TEST(Integration, DeepCapsTrainsWellOnTinyBudget) {
  DeepFixture& f = fixture();
  EXPECT_GT(capsnet::evaluate(*f.model, f.ds.test_x, f.ds.test_y), 0.8);
}

TEST(Integration, SerializeRoundTripsBatchNormState) {
  DeepFixture& f = fixture();
  const Tensor x = capsnet::slice_rows(f.ds.test_x, 0, 8);
  const Tensor before = f.model->forward(x, false, nullptr);

  const std::string path = ::testing::TempDir() + "/deepcaps_bn.bin";
  ASSERT_TRUE(capsnet::save_params(*f.model, path));

  Rng rng(999);
  capsnet::DeepCapsModel fresh(capsnet::DeepCapsConfig::tiny(), rng);
  ASSERT_TRUE(capsnet::load_params(fresh, path));
  const Tensor after = fresh.forward(x, false, nullptr);
  // Identical outputs require the BN running statistics to have survived
  // the round trip, not just conv weights.
  for (std::int64_t i = 0; i < before.numel(); ++i) {
    ASSERT_EQ(before.at(i), after.at(i)) << i;
  }
}

TEST(Integration, MethodologyDesignSurvivesJointInjection) {
  DeepFixture& f = fixture();
  core::MethodologyConfig mc;
  mc.resilience.sweep.nms = {0.5, 0.1, 0.02, 0.005, 0.0};
  mc.profile_samples = 5000;
  mc.mark_threshold_pct = 5.0;
  mc.tolerance_pct = 2.0;
  const core::MethodologyResult r =
      core::run_redcane(*f.model, f.ds.test_x, f.ds.test_y, f.ds.name, mc);

  const auto profiled = core::profile_library(approx::InputDistribution::uniform(),
                                              mc.profile_chain_length, 5000, 1);
  std::vector<noise::InjectionRule> rules;
  for (const core::SiteSelection& s : r.selections) {
    for (const core::ProfiledComponent& pc : profiled) {
      if (pc.mul == s.component) {
        rules.push_back(noise::layer_rule(s.site.kind, s.site.layer,
                                          noise::NoiseSpec{pc.nm, pc.na}));
        break;
      }
    }
  }
  ASSERT_EQ(rules.size(), r.selections.size());
  noise::GaussianInjector injector(rules, 71);
  const double acc = capsnet::evaluate(*f.model, f.ds.test_x, f.ds.test_y, &injector);
  EXPECT_GT(acc, r.baseline_accuracy - 0.10);  // Joint budget: a few pp.
}

TEST(Integration, SelectionRespectsProfiledNoise) {
  DeepFixture& f = fixture();
  core::MethodologyConfig mc;
  mc.resilience.sweep.nms = {0.5, 0.1, 0.02, 0.0};
  mc.profile_samples = 5000;
  const core::MethodologyResult r =
      core::run_redcane(*f.model, f.ds.test_x, f.ds.test_y, f.ds.name, mc);

  const auto profiled = core::profile_library(approx::InputDistribution::uniform(),
                                              mc.profile_chain_length,
                                              mc.profile_samples, mc.profile_seed);
  for (const core::SiteSelection& s : r.selections) {
    for (const core::ProfiledComponent& pc : profiled) {
      if (pc.mul != s.component) continue;
      EXPECT_LE(pc.nm, s.tolerable_nm + 1e-12) << s.site.to_string();
      EXPECT_LE(std::abs(pc.na), s.tolerable_nm + 1e-12) << s.site.to_string();
    }
  }
}

TEST(Integration, EnergyOfDesignBelowAccurate) {
  DeepFixture& f = fixture();
  core::MethodologyConfig mc;
  mc.resilience.sweep.nms = {0.5, 0.1, 0.02, 0.0};
  mc.profile_samples = 5000;
  const core::MethodologyResult r =
      core::run_redcane(*f.model, f.ds.test_x, f.ds.test_y, f.ds.name, mc);

  std::vector<energy::LayerMultiplierChoice> choices;
  for (const core::SiteSelection& s : r.selections) {
    if (s.site.kind == capsnet::OpKind::kMacOutput) {
      choices.push_back({s.site.layer, s.component});
    }
  }
  const auto layers = energy::count_deepcaps_layers(f.model->config());
  const energy::UnitEnergy ue;
  const double exact = energy::approximated_energy_pj(layers, ue, {});
  const double designed = energy::approximated_energy_pj(layers, ue, choices);
  EXPECT_LT(designed, exact);
}

TEST(Integration, ResilienceSweepIsSeedDeterministic) {
  DeepFixture& f = fixture();
  core::ResilienceConfig rc;
  rc.sweep.nms = {0.1, 0.02, 0.0};
  rc.seed = 13;
  core::ResilienceAnalyzer a(*f.model, f.ds.test_x, f.ds.test_y, rc);
  core::ResilienceAnalyzer b(*f.model, f.ds.test_x, f.ds.test_y, rc);
  const core::ResilienceCurve ca = a.sweep_group(capsnet::OpKind::kActivation);
  const core::ResilienceCurve cb = b.sweep_group(capsnet::OpKind::kActivation);
  ASSERT_EQ(ca.drop_pct.size(), cb.drop_pct.size());
  for (std::size_t i = 0; i < ca.drop_pct.size(); ++i) {
    EXPECT_EQ(ca.drop_pct[i], cb.drop_pct[i]);
  }
}

}  // namespace
}  // namespace redcane
