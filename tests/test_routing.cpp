#include "capsnet/routing.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "capsnet/squash.hpp"
#include "tensor/ops.hpp"
#include "tensor/random.hpp"

namespace redcane::capsnet {
namespace {

/// Hook that records every site visit.
class Recorder final : public PerturbationHook {
 public:
  struct Visit {
    std::string layer;
    OpKind kind;
    Shape shape;
  };
  void process(const std::string& layer, OpKind kind, Tensor& x) override {
    visits.push_back({layer, kind, x.shape()});
  }
  std::vector<Visit> visits;
};

TEST(Routing, OutputShapes) {
  Rng rng(1);
  const Tensor votes = ops::uniform(Shape{2, 6, 4, 8}, -1.0, 1.0, rng);
  const RoutingResult r = dynamic_routing(votes, 3, nullptr, "t");
  EXPECT_EQ(r.v.shape(), (Shape{2, 4, 8}));
  EXPECT_EQ(r.s.shape(), (Shape{2, 4, 8}));
  EXPECT_EQ(r.c.shape(), (Shape{2, 6, 4}));
}

TEST(Routing, CouplingCoefficientsAreSoftmaxed) {
  Rng rng(2);
  const Tensor votes = ops::uniform(Shape{1, 5, 3, 4}, -1.0, 1.0, rng);
  const RoutingResult r = dynamic_routing(votes, 3, nullptr, "t");
  for (std::int64_t i = 0; i < 5; ++i) {
    double sum = 0.0;
    for (std::int64_t j = 0; j < 3; ++j) sum += r.c(0, i, j);
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Routing, OneIterationIsUniformCoupling) {
  Rng rng(3);
  const Tensor votes = ops::uniform(Shape{1, 4, 2, 3}, -1.0, 1.0, rng);
  const RoutingResult r = dynamic_routing(votes, 1, nullptr, "t");
  for (std::int64_t i = 0; i < 4; ++i) {
    for (std::int64_t j = 0; j < 2; ++j) EXPECT_NEAR(r.c(0, i, j), 0.5, 1e-6);
  }
}

TEST(Routing, AgreementStrengthensCoupling) {
  // Two output capsules; all input votes agree with output 0's direction
  // and disagree with output 1's. After 3 iterations c[:,0] > c[:,1].
  const std::int64_t I = 4;
  Tensor votes(Shape{1, I, 2, 2});
  for (std::int64_t i = 0; i < I; ++i) {
    votes(0, i, 0, 0) = 1.0F;   // All vote (1, 0) for output 0.
    votes(0, i, 0, 1) = 0.0F;
    votes(0, i, 1, 0) = (i % 2 == 0) ? 1.0F : -1.0F;  // Conflicting votes.
    votes(0, i, 1, 1) = (i % 2 == 0) ? -1.0F : 1.0F;
  }
  const RoutingResult r = dynamic_routing(votes, 3, nullptr, "t");
  for (std::int64_t i = 0; i < I; ++i) {
    EXPECT_GT(r.c(0, i, 0), r.c(0, i, 1)) << "input " << i;
  }
  // The agreed-upon output capsule is longer.
  const double len0 = std::hypot(r.v(0, 0, 0), r.v(0, 0, 1));
  const double len1 = std::hypot(r.v(0, 1, 0), r.v(0, 1, 1));
  EXPECT_GT(len0, len1);
}

TEST(Routing, FinalVEqualsSquashOfFinalS) {
  Rng rng(4);
  const Tensor votes = ops::uniform(Shape{2, 3, 3, 4}, -1.0, 1.0, rng);
  const RoutingResult r = dynamic_routing(votes, 3, nullptr, "t");
  const Tensor v2 = squash(r.s);
  for (std::int64_t i = 0; i < r.v.numel(); ++i) EXPECT_NEAR(r.v.at(i), v2.at(i), 1e-5);
}

TEST(Routing, HookSeesAllFourSiteKindsInOrder) {
  Rng rng(5);
  const Tensor votes = ops::uniform(Shape{1, 3, 2, 2}, -1.0, 1.0, rng);
  Recorder rec;
  (void)dynamic_routing(votes, 3, &rec, "layerX");
  // Per iteration: softmax, mac, activation; logits update except last.
  // 3 iters -> 3*3 + 2 = 11 visits.
  ASSERT_EQ(rec.visits.size(), 11U);
  EXPECT_EQ(rec.visits[0].kind, OpKind::kSoftmax);
  EXPECT_EQ(rec.visits[1].kind, OpKind::kMacOutput);
  EXPECT_EQ(rec.visits[2].kind, OpKind::kActivation);
  EXPECT_EQ(rec.visits[3].kind, OpKind::kLogitsUpdate);
  for (const auto& v : rec.visits) EXPECT_EQ(v.layer, "layerX");
  // Shapes: softmax/logits over [m, I, J]; mac/activation over [m, J, D].
  EXPECT_EQ(rec.visits[0].shape, (Shape{1, 3, 2}));
  EXPECT_EQ(rec.visits[1].shape, (Shape{1, 2, 2}));
}

TEST(Routing, ZeroCouplingDoesNotMaskNonFiniteVotes) {
  // Regression for the `if (cij == 0.0F) continue;` operand skip the GEMM
  // rewrite removed: a coupling coefficient driven to exactly zero (by a
  // perturbation hook, quantization, or softmax underflow) must still
  // multiply its vote, so 0 * Inf = NaN propagates per IEEE semantics
  // instead of being silently dropped.
  const float inf = std::numeric_limits<float>::infinity();
  Tensor votes(Shape{1, 2, 2, 2});
  votes(0, 0, 0, 0) = inf;  // The vote hidden behind c == 0.
  votes(0, 0, 0, 1) = inf;
  votes(0, 0, 1, 0) = 0.25F;
  votes(0, 0, 1, 1) = -0.5F;
  votes(0, 1, 0, 0) = 1.0F;
  votes(0, 1, 0, 1) = 0.5F;
  votes(0, 1, 1, 0) = -0.25F;
  votes(0, 1, 1, 1) = 0.75F;

  class CouplingZeroer final : public PerturbationHook {
   public:
    void process(const std::string&, OpKind kind, Tensor& x) override {
      if (kind == OpKind::kSoftmax) x(0, 0, 0) = 0.0F;
    }
  } zeroer;
  const RoutingResult r = dynamic_routing(votes, 1, &zeroer, "t");

  // s[0, 0, :] = 0 * inf + c * finite = NaN, and squash keeps it NaN.
  EXPECT_TRUE(std::isnan(r.s(0, 0, 0)));
  EXPECT_TRUE(std::isnan(r.v(0, 0, 0)));
  // The untouched output capsule stays finite.
  EXPECT_TRUE(std::isfinite(r.s(0, 1, 0)));
  EXPECT_TRUE(std::isfinite(r.v(0, 1, 1)));
}

TEST(Routing, PerturbedLogitsChangeCoupling) {
  Rng rng(6);
  const Tensor votes = ops::uniform(Shape{1, 4, 3, 4}, -1.0, 1.0, rng);
  const RoutingResult clean = dynamic_routing(votes, 3, nullptr, "t");

  class LogitNoiser final : public PerturbationHook {
   public:
    void process(const std::string&, OpKind kind, Tensor& x) override {
      if (kind != OpKind::kLogitsUpdate) return;
      Rng rng(123);
      for (float& v : x.data()) v += static_cast<float>(rng.normal(0.0, 5.0));
    }
  } noiser;
  const RoutingResult noisy = dynamic_routing(votes, 3, &noiser, "t");
  double diff = 0.0;
  for (std::int64_t i = 0; i < clean.c.numel(); ++i) {
    diff += std::abs(clean.c.at(i) - noisy.c.at(i));
  }
  EXPECT_GT(diff, 1e-3);
}

TEST(RoutingBackward, GradientCheckWithFrozenCoupling) {
  // The backward treats c as constant; check against a forward that also
  // freezes c (single-iteration routing has constant uniform c).
  Rng rng(7);
  Tensor votes = ops::uniform(Shape{1, 3, 2, 3}, -1.0, 1.0, rng);
  const RoutingResult r = dynamic_routing(votes, 1, nullptr, "t");
  const Tensor grad_u = routing_backward(votes, r, r.v);  // dL/dv = v.

  auto loss_at = [&](std::int64_t idx, float eps) {
    const float saved = votes.at(idx);
    votes.at(idx) = saved + eps;
    const RoutingResult rr = dynamic_routing(votes, 1, nullptr, "t");
    votes.at(idx) = saved;
    double l = 0.0;
    for (float v : rr.v.data()) l += 0.5 * static_cast<double>(v) * v;
    return l;
  };
  for (std::int64_t idx = 0; idx < votes.numel(); ++idx) {
    const double num = (loss_at(idx, 1e-3F) - loss_at(idx, -1e-3F)) / 2e-3;
    EXPECT_NEAR(grad_u.at(idx), num, 2e-3) << idx;
  }
}

}  // namespace
}  // namespace redcane::capsnet
