#include "nn/conv2d.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.hpp"
#include "tensor/random.hpp"

namespace redcane::nn {
namespace {

/// Naive reference convolution for cross-checking the production kernel.
Tensor naive_conv(const Tensor& x, const Tensor& w, const Tensor& bias, std::int64_t stride,
                  std::int64_t pad) {
  const std::int64_t n = x.shape().dim(0);
  const std::int64_t h = x.shape().dim(1);
  const std::int64_t wd = x.shape().dim(2);
  const std::int64_t cin = x.shape().dim(3);
  const std::int64_t k = w.shape().dim(0);
  const std::int64_t cout = w.shape().dim(3);
  const std::int64_t ho = (h + 2 * pad - k) / stride + 1;
  const std::int64_t wo = (wd + 2 * pad - k) / stride + 1;
  Tensor out(Shape{n, ho, wo, cout});
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t oy = 0; oy < ho; ++oy) {
      for (std::int64_t ox = 0; ox < wo; ++ox) {
        for (std::int64_t co = 0; co < cout; ++co) {
          double acc = bias.empty() ? 0.0 : bias.at(co);
          for (std::int64_t ky = 0; ky < k; ++ky) {
            for (std::int64_t kx = 0; kx < k; ++kx) {
              for (std::int64_t ci = 0; ci < cin; ++ci) {
                const std::int64_t iy = oy * stride + ky - pad;
                const std::int64_t ix = ox * stride + kx - pad;
                if (iy < 0 || iy >= h || ix < 0 || ix >= wd) continue;
                acc += static_cast<double>(x(ni, iy, ix, ci)) * w(ky, kx, ci, co);
              }
            }
          }
          out(ni, oy, ox, co) = static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

TEST(Conv2DForward, MatchesNaiveReference) {
  Rng rng(1);
  const Tensor x = ops::uniform(Shape{2, 7, 7, 3}, -1.0, 1.0, rng);
  const Tensor w = ops::uniform(Shape{3, 3, 3, 5}, -1.0, 1.0, rng);
  const Tensor b = ops::uniform(Shape{5}, -0.2, 0.2, rng);
  for (const auto& [stride, pad] : {std::pair<std::int64_t, std::int64_t>{1, 0},
                                    {1, 1},
                                    {2, 1},
                                    {2, 0}}) {
    const Tensor got = conv2d_forward(x, w, b, stride, pad);
    const Tensor ref = naive_conv(x, w, b, stride, pad);
    ASSERT_EQ(got.shape(), ref.shape()) << "stride " << stride << " pad " << pad;
    for (std::int64_t i = 0; i < got.numel(); ++i) {
      EXPECT_NEAR(got.at(i), ref.at(i), 1e-4);
    }
  }
}

TEST(Conv2DForward, IdentityKernel) {
  Rng rng(2);
  const Tensor x = ops::uniform(Shape{1, 5, 5, 1}, -1.0, 1.0, rng);
  Tensor w(Shape{1, 1, 1, 1});
  w.at(0) = 1.0F;
  const Tensor got = conv2d_forward(x, w, Tensor(), 1, 0);
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(got.at(i), x.at(i));
}

TEST(Conv2DForward, NoBiasOmitsOffset) {
  Rng rng(3);
  const Tensor x = ops::uniform(Shape{1, 4, 4, 2}, -1.0, 1.0, rng);
  const Tensor w(Shape{3, 3, 2, 2});  // Zero weights.
  const Tensor got = conv2d_forward(x, w, Tensor(), 1, 1);
  for (float v : got.data()) EXPECT_EQ(v, 0.0F);
}

/// Central-difference gradient check of the trainable layer.
TEST(Conv2DBackward, GradientCheck) {
  Rng rng(4);
  Conv2DSpec spec;
  spec.in_channels = 2;
  spec.out_channels = 3;
  spec.kernel = 3;
  spec.stride = 1;
  spec.pad = 1;
  Conv2D layer("t", spec, rng);
  Tensor x = ops::uniform(Shape{1, 4, 4, 2}, -1.0, 1.0, rng);

  // Scalar objective: sum of outputs squared / 2 -> dL/dy = y.
  const Tensor y0 = layer.forward(x, /*train=*/true);
  const Tensor grad_in = layer.backward(y0);

  auto loss_at = [&](Tensor& target, std::int64_t idx, float eps) {
    const float saved = target.at(idx);
    target.at(idx) = saved + eps;
    const Tensor y = layer.forward(x, false);
    target.at(idx) = saved;
    double l = 0.0;
    for (float v : y.data()) l += 0.5 * static_cast<double>(v) * v;
    return l;
  };

  // Check input gradient on a few indices.
  for (std::int64_t idx : {0L, 7L, 15L, 31L}) {
    const double num =
        (loss_at(x, idx, 1e-3F) - loss_at(x, idx, -1e-3F)) / 2e-3;
    EXPECT_NEAR(grad_in.at(idx), num, 5e-2) << "input idx " << idx;
  }
  // Check weight gradient.
  Param& w = layer.weight();
  for (std::int64_t idx : {0L, 11L, 29L, 53L}) {
    const double num =
        (loss_at(w.value, idx, 1e-3F) - loss_at(w.value, idx, -1e-3F)) / 2e-3;
    EXPECT_NEAR(w.grad.at(idx), num, 5e-2) << "weight idx " << idx;
  }
}

TEST(Conv2D, OutExtentFormula) {
  Rng rng(5);
  Conv2DSpec spec;
  spec.in_channels = 1;
  spec.out_channels = 1;
  spec.kernel = 3;
  spec.stride = 2;
  spec.pad = 1;
  const Conv2D layer("t", spec, rng);
  EXPECT_EQ(layer.out_extent(16), 8);
  EXPECT_EQ(layer.out_extent(5), 3);
}

TEST(Conv2D, ParamsExposeWeightAndBias) {
  Rng rng(6);
  Conv2DSpec spec;
  spec.in_channels = 1;
  spec.out_channels = 2;
  Conv2D layer("t", spec, rng);
  EXPECT_EQ(layer.params().size(), 2U);
  spec.bias = false;
  Conv2D nobias("t2", spec, rng);
  EXPECT_EQ(nobias.params().size(), 1U);
}

}  // namespace
}  // namespace redcane::nn
