// Distributed sweep layer contracts (src/dist/):
//  * the wire codec round-trips every message type exactly, rejects
//    truncated/trailing-garbage payloads, and the framed transport
//    detects corruption, oversize frames, timeouts and orderly close;
//  * the run journal recovers exactly the records that reached disk,
//    truncates torn tails, and refuses a mismatched job hash;
//  * a coordinator plus real worker loops produces grids bitwise
//    identical to the in-process analyzer, with reconciled accounting,
//    under normal operation, degradation, and journal resume;
//  * chunking a plan differently cannot change any assembled value.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/sweep_engine.hpp"
#include "core/sweep_plan.hpp"
#include "dist/coordinator.hpp"
#include "dist/job.hpp"
#include "dist/journal.hpp"
#include "dist/wire.hpp"
#include "dist/worker.hpp"
#include "serve/fault.hpp"

namespace redcane::dist {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// ---- wire codec ------------------------------------------------------

TEST(DistWire, HelloRoundTrip) {
  HelloMsg in;
  in.proto = kProtoVersion;
  in.job_hash = 0xDEADBEEFCAFEull;
  in.name = "worker-7";
  WireWriter w;
  encode_hello(w, in);

  HelloMsg out;
  WireReader r(w.bytes().data(), w.bytes().size());
  ASSERT_TRUE(decode_hello(r, &out));
  EXPECT_EQ(out.proto, in.proto);
  EXPECT_EQ(out.job_hash, in.job_hash);
  EXPECT_EQ(out.name, in.name);
}

TEST(DistWire, HelloAckRoundTrip) {
  HelloAckMsg in;
  in.accepted = false;
  in.worker_id = 3;
  in.reason = "job hash mismatch";
  WireWriter w;
  encode_hello_ack(w, in);

  HelloAckMsg out;
  WireReader r(w.bytes().data(), w.bytes().size());
  ASSERT_TRUE(decode_hello_ack(r, &out));
  EXPECT_EQ(out.accepted, in.accepted);
  EXPECT_EQ(out.worker_id, in.worker_id);
  EXPECT_EQ(out.reason, in.reason);
}

TEST(DistWire, HeartbeatRoundTrip) {
  HeartbeatMsg in;
  in.shards_done = 41;
  WireWriter w;
  encode_heartbeat(w, in);
  HeartbeatMsg out;
  WireReader r(w.bytes().data(), w.bytes().size());
  ASSERT_TRUE(decode_heartbeat(r, &out));
  EXPECT_EQ(out.shards_done, 41u);
}

core::SweepShard sample_shard() {
  core::SweepShard s;
  s.id = 12;
  s.spec = attack::AttackSpec::fgsm(0.1);
  s.backend = core::ShardBackend::kNoise;
  s.component = "axm_drum4_dm1";
  s.bits = 6;
  core::SweepPointSpec p1;
  p1.rules.push_back(noise::group_rule(capsnet::OpKind::kMacOutput, {0.5, 0.1}));
  p1.salt = 3;
  core::SweepPointSpec p2;
  p2.rules.push_back(
      noise::layer_rule(capsnet::OpKind::kSoftmax, "Caps1", {0.2, 0.0}));
  p2.rules.push_back(noise::group_rule(capsnet::OpKind::kActivation, {0.1, 0.0}));
  p2.salt = 9;
  s.points = {p1, p2};
  return s;
}

TEST(DistWire, ShardRoundTripIncludingOptionalRuleFields) {
  const core::SweepShard in = sample_shard();
  WireWriter w;
  encode_shard(w, in);

  core::SweepShard out;
  WireReader r(w.bytes().data(), w.bytes().size());
  ASSERT_TRUE(decode_shard(r, &out));
  EXPECT_EQ(out.id, in.id);
  EXPECT_EQ(out.spec.kind, in.spec.kind);
  EXPECT_EQ(out.spec.severity, in.spec.severity);
  EXPECT_EQ(out.backend, in.backend);
  EXPECT_EQ(out.component, in.component);
  EXPECT_EQ(out.bits, in.bits);
  ASSERT_EQ(out.points.size(), in.points.size());
  for (std::size_t i = 0; i < in.points.size(); ++i) {
    EXPECT_EQ(out.points[i].salt, in.points[i].salt);
    ASSERT_EQ(out.points[i].rules.size(), in.points[i].rules.size());
    for (std::size_t j = 0; j < in.points[i].rules.size(); ++j) {
      const noise::InjectionRule& a = in.points[i].rules[j];
      const noise::InjectionRule& b = out.points[i].rules[j];
      EXPECT_EQ(b.kind.has_value(), a.kind.has_value());
      if (a.kind.has_value() && b.kind.has_value()) EXPECT_EQ(*b.kind, *a.kind);
      EXPECT_EQ(b.layer.has_value(), a.layer.has_value());
      if (a.layer.has_value() && b.layer.has_value()) EXPECT_EQ(*b.layer, *a.layer);
      EXPECT_EQ(b.noise.nm, a.noise.nm);
      EXPECT_EQ(b.noise.na, a.noise.na);
    }
  }
}

TEST(DistWire, OutcomeRoundTripIsBitExact) {
  core::ShardOutcome in;
  in.id = 7;
  in.base = 0.8125;
  in.acc = {0.5, 0.0, 1.0, 0.1234567891234567};
  WireWriter w;
  encode_outcome(w, in);

  core::ShardOutcome out;
  WireReader r(w.bytes().data(), w.bytes().size());
  ASSERT_TRUE(decode_outcome(r, &out));
  EXPECT_EQ(out.id, in.id);
  EXPECT_EQ(out.base, in.base);  // Bitwise via f64 bit-pattern transport.
  ASSERT_EQ(out.acc.size(), in.acc.size());
  for (std::size_t i = 0; i < in.acc.size(); ++i) EXPECT_EQ(out.acc[i], in.acc[i]);
}

TEST(DistWire, DecodeRejectsTruncationAndTrailingGarbage) {
  WireWriter w;
  encode_shard(w, sample_shard());

  core::SweepShard out;
  // Truncated at every prefix length: never decodes, never overreads.
  for (std::size_t n = 0; n < w.bytes().size(); ++n) {
    WireReader r(w.bytes().data(), n);
    EXPECT_FALSE(decode_shard(r, &out)) << "prefix " << n;
  }
  // One trailing byte: the schema mismatch must be detected.
  std::vector<std::uint8_t> extra = w.bytes();
  extra.push_back(0);
  WireReader r(extra.data(), extra.size());
  EXPECT_FALSE(decode_shard(r, &out));
}

// ---- framed transport ------------------------------------------------

struct SocketPair {
  Socket client;
  Socket server;
};

SocketPair connected_pair(const char* name) {
  const std::string addr = "unix:" + temp_path(name);
  std::string bound;
  std::string error;
  Socket listener = dist_listen(addr, &bound, &error);
  EXPECT_TRUE(listener.valid()) << error;
  SocketPair p;
  p.client = dist_connect(bound, &error);
  EXPECT_TRUE(p.client.valid()) << error;
  p.server = dist_accept(listener, /*timeout_ms=*/2000);
  EXPECT_TRUE(p.server.valid());
  return p;
}

TEST(DistFrame, SendRecvRoundTrip) {
  SocketPair p = connected_pair("frame_ok.sock");
  WireWriter w;
  encode_heartbeat(w, HeartbeatMsg{99});
  ASSERT_TRUE(send_frame(p.client, MsgType::kHeartbeat, w.bytes()));

  MsgType type{};
  std::vector<std::uint8_t> payload;
  ASSERT_EQ(recv_frame(p.server, 2000, &type, &payload), FrameStatus::kOk);
  EXPECT_EQ(type, MsgType::kHeartbeat);
  HeartbeatMsg hb;
  WireReader r(payload.data(), payload.size());
  ASSERT_TRUE(decode_heartbeat(r, &hb));
  EXPECT_EQ(hb.shards_done, 99u);
}

TEST(DistFrame, CorruptedFrameIsDetected) {
  SocketPair p = connected_pair("frame_bad.sock");
  WireWriter w;
  encode_heartbeat(w, HeartbeatMsg{5});
  ASSERT_TRUE(send_frame_corrupted(p.client, MsgType::kHeartbeat, w.bytes()));

  MsgType type{};
  std::vector<std::uint8_t> payload;
  EXPECT_EQ(recv_frame(p.server, 2000, &type, &payload), FrameStatus::kCorrupt);
}

TEST(DistFrame, OversizeLengthPrefixIsRejectedBeforeAllocation) {
  SocketPair p = connected_pair("frame_huge.sock");
  // Hand-craft a header claiming a frame beyond kMaxFrame.
  const std::uint32_t len = kMaxFrame + 1;
  const std::uint32_t crc = 0;
  std::uint8_t header[8];
  std::memcpy(header, &len, 4);
  std::memcpy(header + 4, &crc, 4);
  ASSERT_EQ(::send(p.client.fd(), header, sizeof header, 0),
            static_cast<ssize_t>(sizeof header));

  MsgType type{};
  std::vector<std::uint8_t> payload;
  EXPECT_EQ(recv_frame(p.server, 2000, &type, &payload), FrameStatus::kTooLarge);
}

TEST(DistFrame, TimeoutAndOrderlyClose) {
  SocketPair p = connected_pair("frame_idle.sock");
  MsgType type{};
  std::vector<std::uint8_t> payload;
  EXPECT_EQ(recv_frame(p.server, 50, &type, &payload), FrameStatus::kTimeout);
  p.client.close_now();
  EXPECT_EQ(recv_frame(p.server, 2000, &type, &payload), FrameStatus::kClosed);
}

// ---- journal ---------------------------------------------------------

core::ShardOutcome outcome_of(std::uint64_t id, double base,
                              std::vector<double> acc) {
  core::ShardOutcome o;
  o.id = id;
  o.base = base;
  o.acc = std::move(acc);
  return o;
}

TEST(DistJournal, AppendThenReloadRecoversEveryRecord) {
  const std::string path = temp_path("journal_basic.rdj");
  std::remove(path.c_str());
  constexpr std::uint64_t kJob = 0xABCD;

  {
    Journal j;
    std::vector<core::ShardOutcome> recovered;
    std::string error;
    ASSERT_TRUE(j.open(path, kJob, &recovered, &error)) << error;
    EXPECT_FALSE(j.stats().existed);
    EXPECT_TRUE(recovered.empty());
    ASSERT_TRUE(j.append(outcome_of(0, 0.5, {0.25, 0.125})));
    ASSERT_TRUE(j.append(outcome_of(1, 0.75, {})));
    ASSERT_TRUE(j.append(outcome_of(2, 0.0, {1.0})));
  }

  Journal j;
  std::vector<core::ShardOutcome> recovered;
  std::string error;
  ASSERT_TRUE(j.open(path, kJob, &recovered, &error)) << error;
  EXPECT_TRUE(j.stats().existed);
  EXPECT_EQ(j.stats().records_loaded, 3);
  EXPECT_EQ(j.stats().torn_bytes_truncated, 0);
  ASSERT_EQ(recovered.size(), 3u);
  EXPECT_EQ(recovered[0].id, 0u);
  EXPECT_EQ(recovered[0].base, 0.5);
  ASSERT_EQ(recovered[0].acc.size(), 2u);
  EXPECT_EQ(recovered[0].acc[1], 0.125);
  EXPECT_EQ(recovered[1].id, 1u);
  EXPECT_TRUE(recovered[1].acc.empty());
  EXPECT_EQ(recovered[2].acc[0], 1.0);
}

TEST(DistJournal, TornTailIsTruncatedAndAppendsContinue) {
  const std::string path = temp_path("journal_torn.rdj");
  std::remove(path.c_str());
  constexpr std::uint64_t kJob = 0x1234;

  {
    Journal j;
    std::vector<core::ShardOutcome> recovered;
    std::string error;
    ASSERT_TRUE(j.open(path, kJob, &recovered, &error)) << error;
    ASSERT_TRUE(j.append(outcome_of(0, 0.5, {0.25})));
    ASSERT_TRUE(j.append(outcome_of(1, 0.5, {0.75})));
  }
  // Simulate a crash mid-append: a partial record at the tail.
  {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const std::uint32_t len = 64;  // Claims 64 payload bytes; writes 3.
    ASSERT_EQ(std::fwrite(&len, 1, 4, f), 4u);
    ASSERT_EQ(std::fwrite("xyz", 1, 3, f), 3u);
    std::fclose(f);
  }

  std::vector<core::ShardOutcome> recovered;
  std::string error;
  Journal j;
  ASSERT_TRUE(j.open(path, kJob, &recovered, &error)) << error;
  EXPECT_EQ(j.stats().records_loaded, 2);
  EXPECT_EQ(j.stats().torn_bytes_truncated, 7);
  ASSERT_EQ(recovered.size(), 2u);

  // The truncated journal is immediately appendable again.
  ASSERT_TRUE(j.append(outcome_of(2, 0.5, {0.125})));
  j.close_now();
  Journal j2;
  std::vector<core::ShardOutcome> again;
  ASSERT_TRUE(j2.open(path, kJob, &again, &error)) << error;
  ASSERT_EQ(again.size(), 3u);
  EXPECT_EQ(again[2].acc[0], 0.125);
}

TEST(DistJournal, CorruptMiddleRecordTruncatesFromThere) {
  const std::string path = temp_path("journal_corrupt.rdj");
  std::remove(path.c_str());
  constexpr std::uint64_t kJob = 0x77;

  long first_record_end = 0;
  {
    Journal j;
    std::vector<core::ShardOutcome> recovered;
    std::string error;
    ASSERT_TRUE(j.open(path, kJob, &recovered, &error)) << error;
    ASSERT_TRUE(j.append(outcome_of(0, 0.5, {0.25})));
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    first_record_end = std::ftell(f);
    std::fclose(f);
    ASSERT_TRUE(j.append(outcome_of(1, 0.5, {0.75})));
    ASSERT_TRUE(j.append(outcome_of(2, 0.5, {0.875})));
  }
  // Flip one byte inside the second record's payload.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(0, std::fseek(f, first_record_end + 12, SEEK_SET));
    const int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(0, std::fseek(f, first_record_end + 12, SEEK_SET));
    ASSERT_NE(EOF, std::fputc(c ^ 0x40, f));
    std::fclose(f);
  }

  std::vector<core::ShardOutcome> recovered;
  std::string error;
  Journal j;
  ASSERT_TRUE(j.open(path, kJob, &recovered, &error)) << error;
  // Everything from the corrupt record on is gone; the journal cannot
  // know record 3 was good without trusting a bad length prefix.
  EXPECT_EQ(j.stats().records_loaded, 1);
  EXPECT_GT(j.stats().torn_bytes_truncated, 0);
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].id, 0u);
}

TEST(DistJournal, RefusesMismatchedJobHash) {
  const std::string path = temp_path("journal_hash.rdj");
  std::remove(path.c_str());
  {
    Journal j;
    std::vector<core::ShardOutcome> recovered;
    std::string error;
    ASSERT_TRUE(j.open(path, 0xAAAA, &recovered, &error)) << error;
    ASSERT_TRUE(j.append(outcome_of(0, 0.5, {0.25})));
  }
  Journal j;
  std::vector<core::ShardOutcome> recovered;
  std::string error;
  EXPECT_FALSE(j.open(path, 0xBBBB, &recovered, &error));
  EXPECT_FALSE(error.empty());

  // The mismatch must not have destroyed the original journal.
  Journal ok;
  ASSERT_TRUE(ok.open(path, 0xAAAA, &recovered, &error)) << error;
  EXPECT_EQ(ok.stats().records_loaded, 1);
}

// ---- end-to-end ------------------------------------------------------

/// Spawns `n` worker loops (threads here; processes in production — the
/// protocol cannot tell) against `addr`, each with an independently
/// rebuilt model/dataset/engine, exactly as a worker process would.
struct WorkerFleet {
  std::vector<std::thread> threads;
  std::vector<WorkerStats> stats;

  WorkerFleet(int n, const std::string& addr, const std::string& profile,
              std::int64_t heartbeat_interval_ms = 100)
      : stats(static_cast<std::size_t>(n)) {
    for (int i = 0; i < n; ++i) {
      threads.emplace_back([this, i, addr, profile, heartbeat_interval_ms] {
        StandardJob job = make_standard_job(profile);
        core::SweepEngine engine(*job.model, job.dataset.test_x,
                                 job.dataset.test_y,
                                 job_engine_config(job, /*threads=*/1));
        WorkerConfig wc;
        wc.addr = addr;
        wc.name = "w" + std::to_string(i);
        wc.job_hash = job.job_hash;
        wc.heartbeat_interval_ms = heartbeat_interval_ms;
        stats[static_cast<std::size_t>(i)] = run_worker(engine, wc);
      });
    }
  }
  ~WorkerFleet() { join(); }
  void join() {
    for (std::thread& t : threads)
      if (t.joinable()) t.join();
  }
};

struct CoordRun {
  CoordinatorResult result;
  JobGrids grids;
};

CoordRun run_distributed(StandardJob& job, CoordinatorConfig cfg, int workers,
                         bool with_local = true) {
  core::SweepEngine local_engine(*job.model, job.dataset.test_x, job.dataset.test_y,
                                 job_engine_config(job, /*threads=*/1));
  LocalExec local;
  if (with_local) {
    local = [&local_engine](const core::SweepShard& s) {
      return core::run_shard(local_engine, s);
    };
  }
  Coordinator coordinator(cfg, job.shards, local);
  std::string error;
  EXPECT_TRUE(coordinator.listen(&error)) << error;

  CoordRun run;
  if (workers > 0) {
    WorkerFleet fleet(workers, coordinator.bound_addr(), job.profile);
    run.result = coordinator.run();
  } else {
    run.result = coordinator.run();
  }
  if (run.result.complete) run.grids = assemble_job(job, run.result.outcomes);
  return run;
}

TEST(DistEndToEnd, TwoWorkersProduceBitIdenticalGrids) {
  StandardJob job = make_standard_job("quick");
  CoordinatorConfig cfg;
  cfg.addr = "unix:" + temp_path("e2e_two.sock");
  cfg.job_hash = job.job_hash;

  const CoordRun run = run_distributed(job, cfg, /*workers=*/2);
  ASSERT_TRUE(run.result.complete) << run.result.error;
  EXPECT_TRUE(run.result.stats.reconciles());
  EXPECT_FALSE(run.result.stats.degraded);
  EXPECT_EQ(run.result.stats.workers_seen, 2);
  EXPECT_EQ(run.result.stats.journal_resumed + run.result.stats.results_accepted +
                run.result.stats.local_completed,
            run.result.stats.shards_total);

  StandardJob ref_job = make_standard_job("quick");
  const JobGrids reference = run_job_in_process(ref_job);
  EXPECT_TRUE(grids_identical(run.grids, reference));
}

TEST(DistEndToEnd, NoWorkersDegradesToLocalExecution) {
  StandardJob job = make_standard_job("quick");
  CoordinatorConfig cfg;
  cfg.addr = "unix:" + temp_path("e2e_none.sock");
  cfg.job_hash = job.job_hash;
  cfg.worker_wait_ms = 100;  // Don't wait long for the fleet that never comes.

  const CoordRun run = run_distributed(job, cfg, /*workers=*/0);
  ASSERT_TRUE(run.result.complete) << run.result.error;
  EXPECT_TRUE(run.result.stats.degraded);
  EXPECT_TRUE(run.result.stats.reconciles());
  EXPECT_EQ(run.result.stats.local_completed, run.result.stats.shards_total);

  StandardJob ref_job = make_standard_job("quick");
  const JobGrids reference = run_job_in_process(ref_job);
  EXPECT_TRUE(grids_identical(run.grids, reference));
}

TEST(DistEndToEnd, NoWorkersAndNoLocalFallbackFailsCleanly) {
  StandardJob job = make_standard_job("quick");
  CoordinatorConfig cfg;
  cfg.addr = "unix:" + temp_path("e2e_nofallback.sock");
  cfg.job_hash = job.job_hash;
  cfg.worker_wait_ms = 100;

  const CoordRun run =
      run_distributed(job, cfg, /*workers=*/0, /*with_local=*/false);
  EXPECT_FALSE(run.result.complete);
  EXPECT_FALSE(run.result.error.empty());
}

TEST(DistEndToEnd, MismatchedJobHashWorkerIsRefused) {
  StandardJob job = make_standard_job("quick");
  CoordinatorConfig cfg;
  cfg.addr = "unix:" + temp_path("e2e_refuse.sock");
  cfg.job_hash = job.job_hash;
  cfg.worker_wait_ms = 400;  // Refused workers don't count; degrade quickly.

  core::SweepEngine local_engine(*job.model, job.dataset.test_x, job.dataset.test_y,
                                 job_engine_config(job, /*threads=*/1));
  Coordinator coordinator(cfg, job.shards,
                          [&local_engine](const core::SweepShard& s) {
                            return core::run_shard(local_engine, s);
                          });
  std::string error;
  ASSERT_TRUE(coordinator.listen(&error)) << error;

  std::thread impostor([addr = coordinator.bound_addr(),
                        wrong_hash = job.job_hash ^ 1] {
    std::string err;
    Socket sock = dist_connect(addr, &err);
    ASSERT_TRUE(sock.valid()) << err;
    WireWriter w;
    HelloMsg hello;
    hello.proto = kProtoVersion;
    hello.job_hash = wrong_hash;  // A worker built from a drifted recipe.
    hello.name = "impostor";
    encode_hello(w, hello);
    ASSERT_TRUE(send_frame(sock, MsgType::kHello, w.bytes()));
    MsgType type{};
    std::vector<std::uint8_t> payload;
    ASSERT_EQ(recv_frame(sock, 2000, &type, &payload), FrameStatus::kOk);
    ASSERT_EQ(type, MsgType::kHelloAck);
    HelloAckMsg ack;
    WireReader r(payload.data(), payload.size());
    ASSERT_TRUE(decode_hello_ack(r, &ack));
    EXPECT_FALSE(ack.accepted);
    EXPECT_FALSE(ack.reason.empty());
  });

  const CoordinatorResult result = coordinator.run();
  impostor.join();
  ASSERT_TRUE(result.complete) << result.error;
  EXPECT_GE(result.stats.workers_refused, 1);
  EXPECT_EQ(result.stats.workers_seen, 0);
  EXPECT_TRUE(result.stats.degraded);
  EXPECT_TRUE(result.stats.reconciles());
}

TEST(DistEndToEnd, ResumeFromJournalSkipsCompletedShards) {
  const std::string journal = temp_path("e2e_resume.rdj");
  std::remove(journal.c_str());

  // First run: crash the coordinator (simulated) after 5 journal appends.
  {
    serve::fault::FaultConfig fc;
    fc.coord_crash_after = 5;
    serve::fault::ScopedFaultPlan plan(fc);

    StandardJob job = make_standard_job("quick");
    CoordinatorConfig cfg;
    cfg.addr = "unix:" + temp_path("e2e_resume1.sock");
    cfg.job_hash = job.job_hash;
    cfg.journal_path = journal;

    const CoordRun run = run_distributed(job, cfg, /*workers=*/2);
    EXPECT_FALSE(run.result.complete);
  }

  // Second run resumes: journaled shards are not re-run, the rest
  // completes, and the grids are bitwise those of an uninterrupted run.
  StandardJob job = make_standard_job("quick");
  CoordinatorConfig cfg;
  cfg.addr = "unix:" + temp_path("e2e_resume2.sock");
  cfg.job_hash = job.job_hash;
  cfg.journal_path = journal;

  const CoordRun run = run_distributed(job, cfg, /*workers=*/2);
  ASSERT_TRUE(run.result.complete) << run.result.error;
  EXPECT_GE(run.result.stats.journal_resumed, 5);
  EXPECT_TRUE(run.result.stats.reconciles());
  EXPECT_EQ(run.result.stats.journal_resumed + run.result.stats.results_accepted +
                run.result.stats.local_completed,
            run.result.stats.shards_total);
  // Resumed shards were not re-assigned.
  EXPECT_LE(run.result.stats.results_accepted,
            run.result.stats.shards_total - run.result.stats.journal_resumed);

  StandardJob ref_job = make_standard_job("quick");
  const JobGrids reference = run_job_in_process(ref_job);
  EXPECT_TRUE(grids_identical(run.grids, reference));
}

// ---- chunk invariance ------------------------------------------------

TEST(DistPlan, ChunkSizeCannotChangeAssembledValues) {
  StandardJob job = make_standard_job("quick");
  core::SweepEngine engine(*job.model, job.dataset.test_x, job.dataset.test_y,
                           job_engine_config(job, /*threads=*/1));

  const core::CurvePlan& plan = job.curves.front().plan;
  std::vector<std::vector<double>> per_chunking;
  for (std::size_t chunk : {std::size_t{1}, std::size_t{3}, plan.points.size()}) {
    const std::vector<core::SweepShard> shards =
        core::chunk_shards(/*first_id=*/0, attack::AttackSpec::none(), plan.points,
                           chunk);
    std::vector<double> acc;
    double base = 0.0;
    for (const core::SweepShard& s : shards) {
      const core::ShardOutcome o = core::run_shard(engine, s);
      base = o.base;
      acc.insert(acc.end(), o.acc.begin(), o.acc.end());
    }
    const core::ResilienceCurve curve = core::assemble_curve(plan, base, acc);
    per_chunking.push_back(curve.drop_pct);
  }
  for (std::size_t i = 1; i < per_chunking.size(); ++i) {
    ASSERT_EQ(per_chunking[i].size(), per_chunking[0].size());
    for (std::size_t j = 0; j < per_chunking[0].size(); ++j) {
      EXPECT_EQ(per_chunking[i][j], per_chunking[0][j]) << "chunking " << i;
    }
  }
}

}  // namespace
}  // namespace redcane::dist
