#include <gtest/gtest.h>

#include "approx/library.hpp"
#include "energy/energy_model.hpp"
#include "energy/op_counter.hpp"

namespace redcane::energy {
namespace {

TEST(UnitEnergyTable, MatchesPaperTableI) {
  const UnitEnergy ue = UnitEnergy::paper_45nm();
  EXPECT_DOUBLE_EQ(ue.add_pj, 0.0202);
  EXPECT_DOUBLE_EQ(ue.mul_pj, 0.5354);
  EXPECT_DOUBLE_EQ(ue.div_pj, 1.0717);
  EXPECT_DOUBLE_EQ(ue.exp_pj, 0.1578);
  EXPECT_DOUBLE_EQ(ue.sqrt_pj, 0.7805);
  EXPECT_DOUBLE_EQ(ue.of(OpType::kMul), 0.5354);
}

TEST(OpCounts, ArithmeticAndEnergy) {
  OpCounts c;
  c.add = 100;
  c.mul = 10;
  const UnitEnergy ue;
  EXPECT_NEAR(c.energy_pj(ue), 100 * 0.0202 + 10 * 0.5354, 1e-9);
  OpCounts d;
  d.div = 5;
  c += d;
  EXPECT_EQ(c.div, 5U);
  EXPECT_EQ(c.total(), 115U);
}

TEST(ConvOps, HandCount) {
  // 4x4 output, 2 out channels, 3x3 kernel, 3 in channels, bias.
  const OpCounts c = conv_ops(4, 4, 2, 3, 3, true);
  EXPECT_EQ(c.mul, 4U * 4U * 2U * 27U);
  EXPECT_EQ(c.add, 4U * 4U * 2U * 27U);  // 26 accumulate + 1 bias.
}

TEST(SquashOps, HandCount) {
  const OpCounts c = squash_ops(10, 8);
  EXPECT_EQ(c.mul, 10U * 16U);
  EXPECT_EQ(c.add, 10U * 8U);
  EXPECT_EQ(c.sqrt, 10U);
  EXPECT_EQ(c.div, 10U);
}

TEST(SoftmaxOps, HandCount) {
  const OpCounts c = softmax_ops(6, 10);
  EXPECT_EQ(c.exp, 60U);
  EXPECT_EQ(c.add, 54U);
  EXPECT_EQ(c.div, 60U);
}

TEST(RoutingOps, IterationStructure) {
  const OpCounts r1 = routing_ops(1, 8, 4, 8, 1);
  const OpCounts r3 = routing_ops(1, 8, 4, 8, 3);
  // More iterations, more work; logits updates appear only for iters >= 2.
  EXPECT_GT(r3.mul, 2U * r1.mul);
  EXPECT_GT(r3.exp, r1.exp);
}

TEST(DeepCapsCount, MultipliationsDominateEnergy) {
  // The paper's headline: ~96% of compute energy is multipliers.
  const OpCounts c = count_deepcaps(capsnet::DeepCapsConfig::paper());
  const UnitEnergy ue;
  EXPECT_GT(c.energy_share(OpType::kMul, ue), 0.90);
  EXPECT_LT(c.energy_share(OpType::kAdd, ue), 0.08);
}

TEST(DeepCapsCount, PaperProfileIsGigaOpScale) {
  const OpCounts c = count_deepcaps(capsnet::DeepCapsConfig::paper());
  EXPECT_GT(c.mul, 100'000'000ULL);  // Hundreds of MMACs per inference.
  EXPECT_GT(c.add, 100'000'000ULL);
  EXPECT_GT(c.div, c.exp / 100);     // Divisions from squash + softmax.
  EXPECT_GT(c.sqrt, 0ULL);
}

TEST(DeepCapsCount, LayerBreakdownSumsToTotal) {
  const auto layers = count_deepcaps_layers(capsnet::DeepCapsConfig::tiny());
  EXPECT_EQ(layers.size(), 18U);
  OpCounts sum;
  for (const LayerOps& l : layers) sum += l.ops;
  const OpCounts total = count_deepcaps(capsnet::DeepCapsConfig::tiny());
  EXPECT_EQ(sum.mul, total.mul);
  EXPECT_EQ(sum.add, total.add);
}

TEST(CapsNetCount, LayerBreakdown) {
  const auto layers = count_capsnet_layers(capsnet::CapsNetConfig::paper());
  ASSERT_EQ(layers.size(), 3U);
  EXPECT_EQ(layers[0].layer, "Conv1");
  // PrimaryCaps conv dominates CapsNet multiplications.
  EXPECT_GT(layers[1].ops.mul, layers[0].ops.mul);
}

TEST(OptimizationPotential, ReproducesFig5Ordering) {
  // XM saves much more than XA; XAM slightly beats XM (paper: -28.3%,
  // -1.9%, -30.2%).
  const OpCounts c = count_deepcaps(capsnet::DeepCapsConfig::paper());
  const UnitEnergy ue;
  const auto scenarios =
      optimization_potential(c, ue, approx::multiplier_by_analog("mul8u_NGR"),
                             approx::adder_by_name("axa_loa6"));
  ASSERT_EQ(scenarios.size(), 4U);
  EXPECT_EQ(scenarios[0].label, "Acc");
  EXPECT_NEAR(scenarios[0].saving, 0.0, 1e-12);
  const double xm = scenarios[1].saving;
  const double xa = scenarios[2].saving;
  const double xam = scenarios[3].saving;
  EXPECT_GT(xm, 0.20);
  EXPECT_LT(xm, 0.35);
  EXPECT_LT(xa, 0.05);
  EXPECT_GT(xam, xm);
  EXPECT_NEAR(xam, xm + xa, 1e-9);
}

TEST(ApproximatedEnergy, SelectionReducesEnergy) {
  const auto layers = count_deepcaps_layers(capsnet::DeepCapsConfig::tiny());
  const UnitEnergy ue;
  const double exact = approximated_energy_pj(layers, ue, {});
  const std::vector<LayerMultiplierChoice> choice{
      {"Caps2D1", &approx::multiplier_by_analog("mul8u_DM1")}};
  const double cheaper = approximated_energy_pj(layers, ue, choice);
  EXPECT_LT(cheaper, exact);
}

TEST(MulEnergy, ScalesWithComponentPower) {
  const UnitEnergy ue;
  EXPECT_DOUBLE_EQ(mul_energy_pj(approx::exact_multiplier(), ue), ue.mul_pj);
  const double ngr = mul_energy_pj(approx::multiplier_by_analog("mul8u_NGR"), ue);
  EXPECT_NEAR(ngr / ue.mul_pj, 276.0 / 391.0, 1e-9);
}

}  // namespace
}  // namespace redcane::energy
