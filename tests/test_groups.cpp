#include "core/groups.hpp"

#include <gtest/gtest.h>

#include "capsnet/capsnet_model.hpp"
#include "capsnet/deepcaps_model.hpp"
#include "tensor/ops.hpp"

namespace redcane::core {
namespace {

using capsnet::OpKind;

TEST(Groups, FourGroupsInPaperOrder) {
  const auto g = all_groups();
  EXPECT_EQ(g[0], OpKind::kMacOutput);
  EXPECT_EQ(g[1], OpKind::kActivation);
  EXPECT_EQ(g[2], OpKind::kSoftmax);
  EXPECT_EQ(g[3], OpKind::kLogitsUpdate);
}

TEST(Groups, DescriptionsMatchTableIII) {
  EXPECT_STREQ(group_description(OpKind::kSoftmax),
               "Results of the softmax (k coefficients in dynamic routing)");
}

TEST(Groups, CapsNetSiteExtraction) {
  Rng rng(1);
  capsnet::CapsNetModel model(capsnet::CapsNetConfig::tiny(), rng);
  Rng drng(2);
  const Tensor probe = ops::uniform(Shape{1, 28, 28, 1}, 0.0, 1.0, drng);
  const std::vector<Site> sites = extract_sites(model, probe);

  // MAC outputs: Conv1, PrimaryCaps conv, ClassCaps votes + routing s.
  const auto mac = sites_of_group(sites, OpKind::kMacOutput);
  EXPECT_EQ(mac.size(), 3U);
  // Softmax / logits update exist only in ClassCaps (single routed layer).
  const auto sm = layers_of_group(sites, OpKind::kSoftmax);
  ASSERT_EQ(sm.size(), 1U);
  EXPECT_EQ(sm[0], "ClassCaps");
  const auto lu = layers_of_group(sites, OpKind::kLogitsUpdate);
  ASSERT_EQ(lu.size(), 1U);
}

TEST(Groups, DeepCapsSiteExtractionCoversAllLayers) {
  Rng rng(3);
  capsnet::DeepCapsModel model(capsnet::DeepCapsConfig::tiny(), rng);
  Rng drng(4);
  const Tensor probe = ops::uniform(Shape{1, 16, 16, 3}, 0.0, 1.0, drng);
  const std::vector<Site> sites = extract_sites(model, probe);

  const auto mac_layers = layers_of_group(sites, OpKind::kMacOutput);
  // 18 layers all produce MAC outputs.
  EXPECT_EQ(mac_layers.size(), 18U);
  // Two routed layers -> softmax and logits-update in exactly those.
  const auto sm_layers = layers_of_group(sites, OpKind::kSoftmax);
  ASSERT_EQ(sm_layers.size(), 2U);
  EXPECT_EQ(sm_layers[0], "Caps3D");
  EXPECT_EQ(sm_layers[1], "ClassCaps");
  const auto lu_layers = layers_of_group(sites, OpKind::kLogitsUpdate);
  EXPECT_EQ(lu_layers.size(), 2U);
}

TEST(Groups, SitesAreUniqueAndOrdered) {
  Rng rng(5);
  capsnet::DeepCapsModel model(capsnet::DeepCapsConfig::tiny(), rng);
  Rng drng(6);
  const Tensor probe = ops::uniform(Shape{1, 16, 16, 3}, 0.0, 1.0, drng);
  const std::vector<Site> sites = extract_sites(model, probe);
  for (std::size_t i = 0; i < sites.size(); ++i) {
    for (std::size_t j = i + 1; j < sites.size(); ++j) {
      EXPECT_FALSE(sites[i] == sites[j]) << sites[i].to_string();
    }
  }
  // First site is the stem conv's MAC output.
  EXPECT_EQ(sites.front().layer, "Conv2D");
  EXPECT_EQ(sites.front().kind, OpKind::kMacOutput);
}

TEST(Groups, SiteToString) {
  const Site s{"Caps3D", OpKind::kSoftmax};
  EXPECT_EQ(s.to_string(), "Caps3D/softmax");
}

}  // namespace
}  // namespace redcane::core
