#include "capsnet/trainer.hpp"

#include <gtest/gtest.h>

#include "capsnet/capsnet_model.hpp"
#include "data/synthetic.hpp"
#include "tensor/ops.hpp"

namespace redcane::capsnet {
namespace {

/// Micro CapsNet profile for fast unit tests.
CapsNetConfig micro_config() {
  CapsNetConfig c;
  c.input_hw = 14;
  c.conv1_kernel = 5;
  c.conv1_channels = 8;
  c.primary_kernel = 5;
  c.primary_stride = 2;
  c.primary_types = 2;
  c.primary_dim = 4;
  c.class_dim = 4;
  return c;
}

data::Dataset micro_dataset() {
  data::SyntheticSpec s;
  s.kind = data::DatasetKind::kMnist;
  s.hw = 14;
  s.channels = 1;
  s.train_count = 200;
  s.test_count = 80;
  s.seed = 21;
  return data::make_synthetic(s);
}

TEST(SliceRows, ExtractsContiguousRows) {
  Tensor t(Shape{4, 2}, {0, 1, 2, 3, 4, 5, 6, 7});
  const Tensor s = slice_rows(t, 1, 3);
  EXPECT_EQ(s.shape(), (Shape{2, 2}));
  EXPECT_EQ(s.at(0), 2.0F);
  EXPECT_EQ(s.at(3), 5.0F);
}

TEST(Trainer, LossDecreasesAndAccuracyRises) {
  Rng rng(1);
  CapsNetModel model(micro_config(), rng);
  const data::Dataset ds = micro_dataset();

  std::vector<double> losses;
  TrainConfig cfg;
  cfg.epochs = 8;
  cfg.batch_size = 20;
  cfg.lr = 3e-3;
  cfg.on_epoch = [&](int, double loss, double) { losses.push_back(loss); };
  const TrainStats stats = train(model, ds.train_x, ds.train_y, cfg);

  ASSERT_EQ(losses.size(), 8U);
  EXPECT_LT(losses.back(), losses.front());
  EXPECT_EQ(stats.epochs_run, 8);
  EXPECT_GT(stats.final_train_accuracy, 0.5);

  const double test_acc = evaluate(model, ds.test_x, ds.test_y);
  EXPECT_GT(test_acc, 0.5);
}

TEST(Trainer, EvaluateIsDeterministicWithoutHook) {
  Rng rng(2);
  CapsNetModel model(micro_config(), rng);
  const data::Dataset ds = micro_dataset();
  const double a = evaluate(model, ds.test_x, ds.test_y);
  const double b = evaluate(model, ds.test_x, ds.test_y);
  EXPECT_EQ(a, b);
}

TEST(Trainer, EvaluateBatchSizeInvariant) {
  Rng rng(3);
  CapsNetModel model(micro_config(), rng);
  const data::Dataset ds = micro_dataset();
  const double a = evaluate(model, ds.test_x, ds.test_y, nullptr, 16);
  const double b = evaluate(model, ds.test_x, ds.test_y, nullptr, 80);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace redcane::capsnet
