#include "nn/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace redcane::nn {
namespace {

TEST(MarginLoss, PerfectPredictionIsZero) {
  // Target length above m+, others below m-.
  const Tensor lengths(Shape{1, 3}, {0.95F, 0.05F, 0.02F});
  const LossResult r = margin_loss(lengths, {0});
  EXPECT_NEAR(r.loss, 0.0, 1e-9);
  for (float g : r.grad.data()) EXPECT_NEAR(g, 0.0, 1e-9);
}

TEST(MarginLoss, PenalizesWeakTarget) {
  const Tensor lengths(Shape{1, 2}, {0.3F, 0.05F});
  const LossResult r = margin_loss(lengths, {0});
  // (0.9 - 0.3)^2 = 0.36.
  EXPECT_NEAR(r.loss, 0.36, 1e-6);
  EXPECT_LT(r.grad(0, 0), 0.0F);  // Push target length up.
}

TEST(MarginLoss, PenalizesStrongNonTarget) {
  const Tensor lengths(Shape{1, 2}, {0.95F, 0.8F});
  const LossResult r = margin_loss(lengths, {0});
  // lambda * (0.8 - 0.1)^2 = 0.5 * 0.49.
  EXPECT_NEAR(r.loss, 0.245, 1e-6);
  EXPECT_GT(r.grad(0, 1), 0.0F);  // Push non-target length down.
}

TEST(MarginLoss, GradientCheck) {
  Tensor lengths(Shape{2, 3}, {0.4F, 0.3F, 0.6F, 0.2F, 0.85F, 0.15F});
  const std::vector<std::int64_t> labels{2, 1};
  const LossResult r = margin_loss(lengths, labels);
  for (std::int64_t idx = 0; idx < lengths.numel(); ++idx) {
    const float saved = lengths.at(idx);
    lengths.at(idx) = saved + 1e-3F;
    const double lp = margin_loss(lengths, labels).loss;
    lengths.at(idx) = saved - 1e-3F;
    const double lm = margin_loss(lengths, labels).loss;
    lengths.at(idx) = saved;
    EXPECT_NEAR(r.grad.at(idx), (lp - lm) / 2e-3, 1e-3) << idx;
  }
}

TEST(CrossEntropy, UniformLogitsGiveLogC) {
  const Tensor logits(Shape{1, 4});
  const LossResult r = softmax_cross_entropy(logits, {2});
  EXPECT_NEAR(r.loss, std::log(4.0), 1e-6);
}

TEST(CrossEntropy, GradientCheck) {
  Tensor logits(Shape{2, 3}, {0.5F, -1.0F, 2.0F, 0.1F, 0.2F, -0.3F});
  const std::vector<std::int64_t> labels{0, 2};
  const LossResult r = softmax_cross_entropy(logits, labels);
  for (std::int64_t idx = 0; idx < logits.numel(); ++idx) {
    const float saved = logits.at(idx);
    logits.at(idx) = saved + 1e-3F;
    const double lp = softmax_cross_entropy(logits, labels).loss;
    logits.at(idx) = saved - 1e-3F;
    const double lm = softmax_cross_entropy(logits, labels).loss;
    logits.at(idx) = saved;
    EXPECT_NEAR(r.grad.at(idx), (lp - lm) / 2e-3, 1e-3) << idx;
  }
}

TEST(Accuracy, CountsArgmaxHits) {
  const Tensor scores(Shape{4, 2}, {0.9F, 0.1F, 0.2F, 0.8F, 0.6F, 0.4F, 0.3F, 0.7F});
  EXPECT_DOUBLE_EQ(accuracy(scores, {0, 1, 0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(accuracy(scores, {1, 0, 1, 0}), 0.0);
  EXPECT_DOUBLE_EQ(accuracy(scores, {0, 0, 0, 0}), 0.5);
}

}  // namespace
}  // namespace redcane::nn
