#include "approx/adder.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/random.hpp"

namespace redcane::approx {
namespace {

TEST(AdderLibrary, HasComponentsExactFirst) {
  const auto& lib = adder_library();
  ASSERT_GE(lib.size(), 6U);
  EXPECT_EQ(lib.front()->info().name, "axa_exact");
}

TEST(AdderLibrary, LookupByName) {
  EXPECT_EQ(adder_by_name("axa_loa6").info().paper_analog, "add8u_5LT");
}

TEST(AdderLibrary, ExactAddsExactly) {
  const Adder& a = adder_by_name("axa_exact");
  EXPECT_EQ(a.add(123456, 654321), 777777U);
  EXPECT_EQ(a.error(1, 2), 0);
}

class AdderProperty : public ::testing::TestWithParam<const Adder*> {};

TEST_P(AdderProperty, ZeroPlusZeroIsZero) {
  EXPECT_EQ(GetParam()->add(0, 0), 0U) << GetParam()->info().name;
}

TEST_P(AdderProperty, Commutative) {
  const Adder& a = *GetParam();
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    const auto x = static_cast<std::uint32_t>(rng.uniform_index(1 << 20));
    const auto y = static_cast<std::uint32_t>(rng.uniform_index(1 << 20));
    EXPECT_EQ(a.add(x, y), a.add(y, x)) << a.info().name;
  }
}

TEST_P(AdderProperty, ErrorBoundedByLowPart) {
  const Adder& a = *GetParam();
  const int k = a.info().param;
  // All families only corrupt a bounded low region; segmented adders can
  // additionally lose inter-segment carries (one per boundary).
  const double bound = (a.info().family == "seg")
                           ? static_cast<double>(1 << 20)  // carries across segments
                           : 2.0 * static_cast<double>(1 << std::max(1, k));
  Rng rng(2);
  for (int i = 0; i < 5000; ++i) {
    const auto x = static_cast<std::uint32_t>(rng.uniform_index(1 << 19));
    const auto y = static_cast<std::uint32_t>(rng.uniform_index(1 << 19));
    EXPECT_LE(std::abs(static_cast<double>(a.error(x, y))), bound) << a.info().name;
  }
}

TEST_P(AdderProperty, PowerAtMostExact) {
  const double exact = adder_by_name("axa_exact").info().power_uw;
  EXPECT_LE(GetParam()->info().power_uw, exact + 1e-9) << GetParam()->info().name;
}

INSTANTIATE_TEST_SUITE_P(AllAdders, AdderProperty, ::testing::ValuesIn(adder_library()),
                         [](const ::testing::TestParamInfo<const Adder*>& info) {
                           return info.param->info().name;
                         });

TEST(AdderFamilies, LoaHighPartExact) {
  const Adder& a = adder_by_name("axa_loa6");
  // Operands with zero low parts add exactly.
  EXPECT_EQ(a.add(0x1000, 0x2000), 0x3000U);
  EXPECT_EQ(a.error(0x40, 0x80), 0);
}

TEST(AdderFamilies, LoaLowPartIsOr) {
  const Adder& a = adder_by_name("axa_loa4");
  EXPECT_EQ(a.add(0b0101, 0b0011), 0b0111U);  // OR, not sum.
}

TEST(AdderFamilies, TruncDropsLowBits) {
  const Adder& a = adder_by_name("axa_trunc4");
  EXPECT_EQ(a.add(0xF, 0xF), 0U);
  EXPECT_EQ(a.add(0x1F, 0x2F), 0x30U);
}

TEST(AdderFamilies, SegmentedLosesCrossSegmentCarry) {
  const Adder& a = adder_by_name("axa_seg8");
  // 0xFF + 0x01 carries across the first 8-bit segment boundary: lost.
  EXPECT_EQ(a.add(0xFF, 0x01), 0x00U);
  // No boundary crossing: exact.
  EXPECT_EQ(a.add(0x10, 0x20), 0x30U);
}

}  // namespace
}  // namespace redcane::approx
