#include "core/export.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "approx/library.hpp"

namespace redcane::core {
namespace {

ResilienceCurve sample_curve() {
  ResilienceCurve c;
  c.label = "#1: MAC outputs";
  c.kind = capsnet::OpKind::kMacOutput;
  c.nms = {0.5, 0.05, 0.0};
  c.drop_pct = {-80.0, -1.5, 0.0};
  return c;
}

TEST(ExportCsv, CurvesHaveHeaderAndRows) {
  const std::string csv = curves_to_csv({sample_curve()});
  EXPECT_NE(csv.find("label,kind,layer,nm,drop_pct\n"), std::string::npos);
  EXPECT_NE(csv.find("#1: MAC outputs,MAC outputs,,0.5,-80\n"), std::string::npos);
  // One header + 3 grid points.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
}

TEST(ExportCsv, LayerCurveCarriesLayerColumn) {
  ResilienceCurve c = sample_curve();
  c.layer = "Caps2D7";
  const std::string csv = curves_to_csv({c});
  EXPECT_NE(csv.find(",Caps2D7,"), std::string::npos);
}

TEST(ExportCsv, Selections) {
  SiteSelection s;
  s.site = {"Conv1", capsnet::OpKind::kMacOutput};
  s.tolerable_nm = 0.02;
  s.component = &approx::multiplier_by_analog("mul8u_DM1");
  const std::string csv = selections_to_csv({s});
  EXPECT_NE(csv.find("Conv1,MAC outputs,0.02,axm_drum4_dm1,195,"), std::string::npos);
}

TEST(ExportCsv, Profiles) {
  std::vector<ProfiledComponent> p{
      {&approx::exact_multiplier(), 0.0, 0.0, true},
      {&approx::multiplier_by_analog("mul8u_NGR"), 0.004, 0.001, true}};
  const std::string csv = profiles_to_csv(p);
  EXPECT_NE(csv.find("axm_exact,exact,mul8u_1JFF,391,710,0,0,1\n"), std::string::npos);
  EXPECT_NE(csv.find("axm_drum5_ngr,drum,mul8u_NGR,276,512,0.004,0.001,1\n"),
            std::string::npos);
}

TEST(ExportJson, ResultRoundTripsKeyFields) {
  MethodologyResult r;
  r.model_name = "CapsNet";
  r.dataset_name = "MNIST(synthetic)";
  r.baseline_accuracy = 0.97;
  r.sites = {{"Conv1", capsnet::OpKind::kMacOutput}};
  r.group_curves = {sample_curve()};
  r.resilient_groups = {capsnet::OpKind::kSoftmax};
  SiteSelection s;
  s.site = r.sites[0];
  s.tolerable_nm = 0.05;
  s.component = &approx::exact_multiplier();
  r.selections = {s};
  r.evaluations_run = 12;
  r.evaluations_saved_by_pruning = 34;

  const std::string json = result_to_json(r);
  EXPECT_NE(json.find("\"model\":\"CapsNet\""), std::string::npos);
  EXPECT_NE(json.find("\"baseline_accuracy\":0.97"), std::string::npos);
  EXPECT_NE(json.find("\"nm\":[0.5,0.05,0]"), std::string::npos);
  EXPECT_NE(json.find("\"drop_pct\":[-80,-1.5,0]"), std::string::npos);
  EXPECT_NE(json.find("\"resilient_groups\":[\"softmax\"]"), std::string::npos);
  EXPECT_NE(json.find("\"evaluations_saved\":34"), std::string::npos);
  // Balanced braces / brackets (cheap well-formedness proxy).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(ExportJson, EscapesQuotes) {
  MethodologyResult r;
  r.model_name = "a\"b\\c";
  const std::string json = result_to_json(r);
  EXPECT_NE(json.find("\"model\":\"a\\\"b\\\\c\""), std::string::npos);
}

TEST(ExportFile, WritesAndFailsGracefully) {
  const std::string path = ::testing::TempDir() + "/export_test.csv";
  EXPECT_TRUE(write_text_file(path, "a,b\n1,2\n"));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[32] = {};
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  EXPECT_EQ(std::string(buf, n), "a,b\n1,2\n");
  EXPECT_FALSE(write_text_file("/nonexistent_dir_xyz/file.csv", "x"));
}

}  // namespace
}  // namespace redcane::core
