#include "quant/approx_conv.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "approx/error_profile.hpp"
#include "approx/library.hpp"
#include "tensor/ops.hpp"
#include "tensor/random.hpp"
#include "tensor/stats.hpp"

namespace redcane::quant {
namespace {

struct ConvFixture {
  Tensor x;
  Tensor w;
  Tensor bias;
  ApproxConvSpec spec;

  static ConvFixture random(std::uint64_t seed) {
    Rng rng(seed);
    ConvFixture f;
    f.x = ops::uniform(Shape{2, 8, 8, 3}, 0.0, 1.0, rng);
    f.w = ops::uniform(Shape{3, 3, 3, 4}, -0.5, 0.5, rng);
    f.bias = ops::uniform(Shape{4}, -0.1, 0.1, rng);
    f.spec.stride = 1;
    f.spec.pad = 1;
    f.spec.bits = 8;
    return f;
  }
};

TEST(ApproxConv, ExactMultiplierMatchesReferenceWithinQuantError) {
  const ConvFixture f = ConvFixture::random(1);
  const Tensor ref = reference_conv2d(f.x, f.w, f.bias, f.spec);
  const Tensor got = approx_conv2d(f.x, f.w, f.bias, f.spec, approx::exact_multiplier());
  ASSERT_EQ(ref.shape(), got.shape());
  // 8-bit quantization over 27 taps: per-output error bounded by
  // taps * (step_x * |w|max + step_w * |x|max + step_x * step_w) / 2-ish.
  for (std::int64_t i = 0; i < ref.numel(); ++i) {
    EXPECT_NEAR(ref.at(i), got.at(i), 0.08) << "at " << i;
  }
}

TEST(ApproxConv, OutputShapes) {
  const ConvFixture f = ConvFixture::random(2);
  const Tensor got = approx_conv2d(f.x, f.w, f.bias, f.spec, approx::exact_multiplier());
  EXPECT_EQ(got.shape(), (Shape{2, 8, 8, 4}));
  ApproxConvSpec strided = f.spec;
  strided.stride = 2;
  const Tensor s = approx_conv2d(f.x, f.w, f.bias, strided, approx::exact_multiplier());
  EXPECT_EQ(s.shape(), (Shape{2, 4, 4, 4}));
}

TEST(ApproxConv, ApproximateMultiplierAddsError) {
  const ConvFixture f = ConvFixture::random(3);
  const Tensor exact = approx_conv2d(f.x, f.w, f.bias, f.spec, approx::exact_multiplier());
  const Tensor noisy =
      approx_conv2d(f.x, f.w, f.bias, f.spec, approx::multiplier_by_name("axm_drum3_jv3"));
  double max_abs = 0.0;
  for (std::int64_t i = 0; i < exact.numel(); ++i) {
    max_abs = std::max(max_abs, std::abs(static_cast<double>(exact.at(i) - noisy.at(i))));
  }
  EXPECT_GT(max_abs, 1e-4);
}

TEST(ApproxConv, ErrorScalesWithComponentAggressiveness) {
  const ConvFixture f = ConvFixture::random(4);
  const Tensor ref = reference_conv2d(f.x, f.w, f.bias, f.spec);
  auto rms_err = [&](const approx::Multiplier& m) {
    const Tensor got = approx_conv2d(f.x, f.w, f.bias, f.spec, m);
    double e = 0.0;
    for (std::int64_t i = 0; i < ref.numel(); ++i) {
      const double d = ref.at(i) - got.at(i);
      e += d * d;
    }
    return std::sqrt(e / static_cast<double>(ref.numel()));
  };
  const double gentle = rms_err(approx::multiplier_by_analog("mul8u_NGR"));
  const double aggressive = rms_err(approx::multiplier_by_analog("mul8u_QKX"));
  EXPECT_LT(gentle, aggressive);
}

TEST(ApproxConv, GaussianNoiseModelPredictsRealErrorScale) {
  // D1 validation: the range-relative NM measured on the real approximate
  // conv output should be within an order of magnitude of the NM profiled
  // from the multiplier in isolation.
  const ConvFixture f = ConvFixture::random(5);
  const approx::Multiplier& m = approx::multiplier_by_analog("mul8u_DM1");
  const Tensor exact = approx_conv2d(f.x, f.w, f.bias, f.spec, approx::exact_multiplier());
  const Tensor noisy = approx_conv2d(f.x, f.w, f.bias, f.spec, m);
  const Tensor delta = ops::sub(noisy, exact);
  const stats::Moments dm = stats::moments(delta);
  const stats::Moments xm = stats::moments(exact);
  const double real_nm = dm.stddev / xm.range();

  approx::ProfileConfig pc;
  pc.samples = 20000;
  pc.chain_length = 27;  // 3x3x3 taps.
  const approx::ErrorProfile profile =
      approx::profile_multiplier(m, approx::InputDistribution::uniform(), pc);
  EXPECT_GT(real_nm, profile.nm / 10.0);
  EXPECT_LT(real_nm, profile.nm * 10.0);
}

TEST(ApproxConv, ValidPaddingSkipsBorder) {
  const ConvFixture f = ConvFixture::random(6);
  ApproxConvSpec valid = f.spec;
  valid.pad = 0;
  const Tensor got = approx_conv2d(f.x, f.w, f.bias, valid, approx::exact_multiplier());
  EXPECT_EQ(got.shape(), (Shape{2, 6, 6, 4}));
}

}  // namespace
}  // namespace redcane::quant
