#include "data/synthetic.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "data/idx.hpp"

namespace redcane::data {
namespace {

SyntheticSpec small_spec(DatasetKind kind) {
  SyntheticSpec s;
  s.kind = kind;
  s.hw = 16;
  s.channels = (kind == DatasetKind::kCifar10 || kind == DatasetKind::kSvhn) ? 3 : 1;
  s.train_count = 100;
  s.test_count = 40;
  s.seed = 9;
  return s;
}

TEST(Synthetic, ShapesAndRanges) {
  const Dataset ds = make_synthetic(small_spec(DatasetKind::kMnist));
  EXPECT_EQ(ds.train_x.shape(), (Shape{100, 16, 16, 1}));
  EXPECT_EQ(ds.test_x.shape(), (Shape{40, 16, 16, 1}));
  for (float v : ds.train_x.data()) {
    EXPECT_GE(v, 0.0F);
    EXPECT_LE(v, 1.0F);
  }
}

TEST(Synthetic, BalancedLabels) {
  const Dataset ds = make_synthetic(small_spec(DatasetKind::kCifar10));
  std::vector<int> counts(10, 0);
  for (std::int64_t y : ds.train_y) ++counts[static_cast<std::size_t>(y)];
  for (int c : counts) EXPECT_EQ(c, 10);
  EXPECT_EQ(ds.num_classes(), 10);
}

TEST(Synthetic, DeterministicInSpec) {
  const Dataset a = make_synthetic(small_spec(DatasetKind::kSvhn));
  const Dataset b = make_synthetic(small_spec(DatasetKind::kSvhn));
  for (std::int64_t i = 0; i < a.train_x.numel(); ++i) {
    ASSERT_EQ(a.train_x.at(i), b.train_x.at(i));
  }
}

TEST(Synthetic, DifferentSeedsDiffer) {
  SyntheticSpec s1 = small_spec(DatasetKind::kMnist);
  SyntheticSpec s2 = s1;
  s2.seed = 10;
  const Dataset a = make_synthetic(s1);
  const Dataset b = make_synthetic(s2);
  double diff = 0.0;
  for (std::int64_t i = 0; i < a.train_x.numel(); ++i) {
    diff += std::abs(a.train_x.at(i) - b.train_x.at(i));
  }
  EXPECT_GT(diff, 1.0);
}

TEST(Synthetic, ClassesAreSeparable) {
  // Nearest-prototype classification on noise-free class means must beat
  // chance by a wide margin: the generator must produce learnable classes.
  const Dataset ds = make_synthetic(small_spec(DatasetKind::kMnist));
  const std::int64_t dim = ds.train_x.numel() / ds.train_x.shape().dim(0);
  std::vector<std::vector<double>> means(10, std::vector<double>(static_cast<std::size_t>(dim)));
  std::vector<int> counts(10, 0);
  for (std::int64_t i = 0; i < ds.train_x.shape().dim(0); ++i) {
    const auto y = static_cast<std::size_t>(ds.train_y[static_cast<std::size_t>(i)]);
    ++counts[y];
    for (std::int64_t k = 0; k < dim; ++k) {
      means[y][static_cast<std::size_t>(k)] += ds.train_x.at(i * dim + k);
    }
  }
  for (std::size_t c = 0; c < 10; ++c) {
    for (double& v : means[c]) v /= counts[c];
  }
  int hits = 0;
  const std::int64_t n_test = ds.test_x.shape().dim(0);
  for (std::int64_t i = 0; i < n_test; ++i) {
    double best = 1e18;
    std::size_t best_c = 0;
    for (std::size_t c = 0; c < 10; ++c) {
      double d2 = 0.0;
      for (std::int64_t k = 0; k < dim; ++k) {
        const double d = ds.test_x.at(i * dim + k) - means[c][static_cast<std::size_t>(k)];
        d2 += d * d;
      }
      if (d2 < best) {
        best = d2;
        best_c = c;
      }
    }
    if (static_cast<std::int64_t>(best_c) == ds.test_y[static_cast<std::size_t>(i)]) ++hits;
  }
  EXPECT_GT(static_cast<double>(hits) / static_cast<double>(n_test), 0.8);
}

TEST(Synthetic, SamplesWithinClassVary) {
  const Dataset ds = make_synthetic(small_spec(DatasetKind::kMnist));
  // Samples 0 and 10 share class 0 but must not be identical (augmentation).
  const std::int64_t dim = ds.train_x.numel() / ds.train_x.shape().dim(0);
  double diff = 0.0;
  for (std::int64_t k = 0; k < dim; ++k) {
    diff += std::abs(ds.train_x.at(k) - ds.train_x.at(10 * dim + k));
  }
  EXPECT_GT(diff, 0.5);
}

TEST(Synthetic, BenchmarkShortcutsShapes) {
  const Dataset cifar = make_benchmark(DatasetKind::kCifar10, 32, 50, 20);
  EXPECT_EQ(cifar.train_x.shape(), (Shape{50, 32, 32, 3}));
  const Dataset mnist = make_benchmark(DatasetKind::kMnist, 28, 50, 20);
  EXPECT_EQ(mnist.train_x.shape(), (Shape{50, 28, 28, 1}));
  EXPECT_EQ(mnist.name, "MNIST(synthetic)");
}

TEST(Synthetic, KindNames) {
  EXPECT_STREQ(dataset_kind_name(DatasetKind::kMnist), "MNIST");
  EXPECT_STREQ(dataset_kind_name(DatasetKind::kFashionMnist), "Fashion-MNIST");
  EXPECT_STREQ(dataset_kind_name(DatasetKind::kCifar10), "CIFAR-10");
  EXPECT_STREQ(dataset_kind_name(DatasetKind::kSvhn), "SVHN");
}

// ---- IDX loaders ----

void write_be32(std::FILE* f, std::uint32_t v) {
  const unsigned char b[4] = {static_cast<unsigned char>(v >> 24),
                              static_cast<unsigned char>(v >> 16),
                              static_cast<unsigned char>(v >> 8),
                              static_cast<unsigned char>(v)};
  ASSERT_EQ(std::fwrite(b, 1, 4, f), 4U);
}

/// Writes a tiny IDX3 image file: `n` images of hw x hw whose pixel (r, c)
/// of image i is (i * 31 + r * hw + c) % 256.
void write_idx_images(const std::string& path, std::int64_t n, std::int64_t hw) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  write_be32(f, 0x803U);
  write_be32(f, static_cast<std::uint32_t>(n));
  write_be32(f, static_cast<std::uint32_t>(hw));
  write_be32(f, static_cast<std::uint32_t>(hw));
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t p = 0; p < hw * hw; ++p) {
      const unsigned char px = static_cast<unsigned char>((i * 31 + p) % 256);
      ASSERT_EQ(std::fwrite(&px, 1, 1, f), 1U);
    }
  }
  std::fclose(f);
}

void write_idx_labels(const std::string& path, const std::vector<std::uint8_t>& labels) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  write_be32(f, 0x801U);
  write_be32(f, static_cast<std::uint32_t>(labels.size()));
  ASSERT_EQ(std::fwrite(labels.data(), 1, labels.size(), f), labels.size());
  std::fclose(f);
}

TEST(Idx, ImagesAndLabelsRoundTrip) {
  const std::string dir = ::testing::TempDir();
  write_idx_images(dir + "/imgs.idx", 3, 6);
  write_idx_labels(dir + "/labels.idx", {4, 0, 9});

  Tensor images;
  ASSERT_TRUE(load_idx_images(dir + "/imgs.idx", images));
  EXPECT_EQ(images.shape(), (Shape{3, 6, 6, 1}));
  // Pixel (i=1, p=5): (31 + 5) % 256 = 36 -> 36/255.
  EXPECT_FLOAT_EQ(images.at(1 * 36 + 5), 36.0F / 255.0F);

  std::vector<std::int64_t> labels;
  ASSERT_TRUE(load_idx_labels(dir + "/labels.idx", labels));
  EXPECT_EQ(labels, (std::vector<std::int64_t>{4, 0, 9}));

  // The limit caps the row count without disturbing earlier rows.
  Tensor two;
  ASSERT_TRUE(load_idx_images(dir + "/imgs.idx", two, 2));
  EXPECT_EQ(two.shape(), (Shape{2, 6, 6, 1}));
  for (std::int64_t i = 0; i < two.numel(); ++i) EXPECT_EQ(two.at(i), images.at(i));
}

TEST(Idx, RejectsMissingTruncatedAndWrongMagic) {
  const std::string dir = ::testing::TempDir();
  Tensor images;
  std::vector<std::int64_t> labels;
  EXPECT_FALSE(load_idx_images(dir + "/absent.idx", images));
  EXPECT_FALSE(load_idx_labels(dir + "/absent.idx", labels));

  // Labels magic on an images load (and vice versa).
  write_idx_labels(dir + "/l.idx", {1, 2});
  EXPECT_FALSE(load_idx_images(dir + "/l.idx", images));
  write_idx_images(dir + "/i.idx", 2, 4);
  EXPECT_FALSE(load_idx_labels(dir + "/i.idx", labels));

  // Truncated payload: header promises 4 images, file carries 2.
  write_idx_images(dir + "/short.idx", 2, 4);
  std::FILE* f = std::fopen((dir + "/short.idx").c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 4, SEEK_SET);
  write_be32(f, 4);
  std::fclose(f);
  EXPECT_FALSE(load_idx_images(dir + "/short.idx", images));
}

TEST(Idx, MnistLoaderFitsExtentAndFallsBackToSynthetic) {
  const std::string dir = ::testing::TempDir() + "/mnist_idx";
  ASSERT_EQ(std::system(("mkdir -p '" + dir + "'").c_str()), 0);
  write_idx_images(dir + "/train-images-idx3-ubyte", 6, 28);
  write_idx_labels(dir + "/train-labels-idx1-ubyte", {0, 1, 2, 3, 4, 5});
  write_idx_images(dir + "/t10k-images-idx3-ubyte", 4, 28);
  write_idx_labels(dir + "/t10k-labels-idx1-ubyte", {6, 7, 8, 9});

  // Center-crop 28 -> 20 and cap the train split.
  const Dataset real = load_mnist(dir, 20, /*train_count=*/5, /*test_count=*/4);
  EXPECT_EQ(real.name, "MNIST(idx)");
  EXPECT_EQ(real.train_x.shape(), (Shape{5, 20, 20, 1}));
  EXPECT_EQ(real.test_x.shape(), (Shape{4, 20, 20, 1}));
  EXPECT_EQ(real.train_y, (std::vector<std::int64_t>{0, 1, 2, 3, 4}));
  // Crop offset is (28 - 20) / 2 = 4: fitted (0, 0) is source (4, 4) of
  // image 0 -> ((4 * 28 + 4) % 256) / 255.
  EXPECT_FLOAT_EQ(real.train_x.at(0), static_cast<float>((4 * 28 + 4) % 256) / 255.0F);

  // Missing directory: synthetic stand-in of the same geometry.
  const Dataset fallback = load_mnist(::testing::TempDir() + "/no_such_dir", 20, 30, 10);
  EXPECT_EQ(fallback.name, "MNIST(synthetic)");
  EXPECT_EQ(fallback.train_x.shape(), (Shape{30, 20, 20, 1}));
  EXPECT_EQ(fallback.test_x.shape(), (Shape{10, 20, 20, 1}));
}

}  // namespace
}  // namespace redcane::data
