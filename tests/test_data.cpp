#include "data/synthetic.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace redcane::data {
namespace {

SyntheticSpec small_spec(DatasetKind kind) {
  SyntheticSpec s;
  s.kind = kind;
  s.hw = 16;
  s.channels = (kind == DatasetKind::kCifar10 || kind == DatasetKind::kSvhn) ? 3 : 1;
  s.train_count = 100;
  s.test_count = 40;
  s.seed = 9;
  return s;
}

TEST(Synthetic, ShapesAndRanges) {
  const Dataset ds = make_synthetic(small_spec(DatasetKind::kMnist));
  EXPECT_EQ(ds.train_x.shape(), (Shape{100, 16, 16, 1}));
  EXPECT_EQ(ds.test_x.shape(), (Shape{40, 16, 16, 1}));
  for (float v : ds.train_x.data()) {
    EXPECT_GE(v, 0.0F);
    EXPECT_LE(v, 1.0F);
  }
}

TEST(Synthetic, BalancedLabels) {
  const Dataset ds = make_synthetic(small_spec(DatasetKind::kCifar10));
  std::vector<int> counts(10, 0);
  for (std::int64_t y : ds.train_y) ++counts[static_cast<std::size_t>(y)];
  for (int c : counts) EXPECT_EQ(c, 10);
  EXPECT_EQ(ds.num_classes(), 10);
}

TEST(Synthetic, DeterministicInSpec) {
  const Dataset a = make_synthetic(small_spec(DatasetKind::kSvhn));
  const Dataset b = make_synthetic(small_spec(DatasetKind::kSvhn));
  for (std::int64_t i = 0; i < a.train_x.numel(); ++i) {
    ASSERT_EQ(a.train_x.at(i), b.train_x.at(i));
  }
}

TEST(Synthetic, DifferentSeedsDiffer) {
  SyntheticSpec s1 = small_spec(DatasetKind::kMnist);
  SyntheticSpec s2 = s1;
  s2.seed = 10;
  const Dataset a = make_synthetic(s1);
  const Dataset b = make_synthetic(s2);
  double diff = 0.0;
  for (std::int64_t i = 0; i < a.train_x.numel(); ++i) {
    diff += std::abs(a.train_x.at(i) - b.train_x.at(i));
  }
  EXPECT_GT(diff, 1.0);
}

TEST(Synthetic, ClassesAreSeparable) {
  // Nearest-prototype classification on noise-free class means must beat
  // chance by a wide margin: the generator must produce learnable classes.
  const Dataset ds = make_synthetic(small_spec(DatasetKind::kMnist));
  const std::int64_t dim = ds.train_x.numel() / ds.train_x.shape().dim(0);
  std::vector<std::vector<double>> means(10, std::vector<double>(static_cast<std::size_t>(dim)));
  std::vector<int> counts(10, 0);
  for (std::int64_t i = 0; i < ds.train_x.shape().dim(0); ++i) {
    const auto y = static_cast<std::size_t>(ds.train_y[static_cast<std::size_t>(i)]);
    ++counts[y];
    for (std::int64_t k = 0; k < dim; ++k) {
      means[y][static_cast<std::size_t>(k)] += ds.train_x.at(i * dim + k);
    }
  }
  for (std::size_t c = 0; c < 10; ++c) {
    for (double& v : means[c]) v /= counts[c];
  }
  int hits = 0;
  const std::int64_t n_test = ds.test_x.shape().dim(0);
  for (std::int64_t i = 0; i < n_test; ++i) {
    double best = 1e18;
    std::size_t best_c = 0;
    for (std::size_t c = 0; c < 10; ++c) {
      double d2 = 0.0;
      for (std::int64_t k = 0; k < dim; ++k) {
        const double d = ds.test_x.at(i * dim + k) - means[c][static_cast<std::size_t>(k)];
        d2 += d * d;
      }
      if (d2 < best) {
        best = d2;
        best_c = c;
      }
    }
    if (static_cast<std::int64_t>(best_c) == ds.test_y[static_cast<std::size_t>(i)]) ++hits;
  }
  EXPECT_GT(static_cast<double>(hits) / static_cast<double>(n_test), 0.8);
}

TEST(Synthetic, SamplesWithinClassVary) {
  const Dataset ds = make_synthetic(small_spec(DatasetKind::kMnist));
  // Samples 0 and 10 share class 0 but must not be identical (augmentation).
  const std::int64_t dim = ds.train_x.numel() / ds.train_x.shape().dim(0);
  double diff = 0.0;
  for (std::int64_t k = 0; k < dim; ++k) {
    diff += std::abs(ds.train_x.at(k) - ds.train_x.at(10 * dim + k));
  }
  EXPECT_GT(diff, 0.5);
}

TEST(Synthetic, BenchmarkShortcutsShapes) {
  const Dataset cifar = make_benchmark(DatasetKind::kCifar10, 32, 50, 20);
  EXPECT_EQ(cifar.train_x.shape(), (Shape{50, 32, 32, 3}));
  const Dataset mnist = make_benchmark(DatasetKind::kMnist, 28, 50, 20);
  EXPECT_EQ(mnist.train_x.shape(), (Shape{50, 28, 28, 1}));
  EXPECT_EQ(mnist.name, "MNIST(synthetic)");
}

TEST(Synthetic, KindNames) {
  EXPECT_STREQ(dataset_kind_name(DatasetKind::kMnist), "MNIST");
  EXPECT_STREQ(dataset_kind_name(DatasetKind::kFashionMnist), "Fashion-MNIST");
  EXPECT_STREQ(dataset_kind_name(DatasetKind::kCifar10), "CIFAR-10");
  EXPECT_STREQ(dataset_kind_name(DatasetKind::kSvhn), "SVHN");
}

}  // namespace
}  // namespace redcane::data
