#include "nn/activations.hpp"

#include <gtest/gtest.h>

namespace redcane::nn {
namespace {

TEST(ReLUTest, ClampsNegatives) {
  const Tensor x(Shape{4}, {-2.0F, -0.5F, 0.0F, 3.0F});
  const Tensor y = relu(x);
  EXPECT_EQ(y.at(0), 0.0F);
  EXPECT_EQ(y.at(1), 0.0F);
  EXPECT_EQ(y.at(2), 0.0F);
  EXPECT_EQ(y.at(3), 3.0F);
}

TEST(ReLUTest, BackwardMasksByInputSign) {
  ReLU layer;
  const Tensor x(Shape{4}, {-1.0F, 2.0F, -3.0F, 4.0F});
  (void)layer.forward(x, /*train=*/true);
  const Tensor g(Shape{4}, {1.0F, 1.0F, 1.0F, 1.0F});
  const Tensor gi = layer.backward(g);
  EXPECT_EQ(gi.at(0), 0.0F);
  EXPECT_EQ(gi.at(1), 1.0F);
  EXPECT_EQ(gi.at(2), 0.0F);
  EXPECT_EQ(gi.at(3), 1.0F);
}

TEST(ReLUTest, StatelessLayerHasNoParams) {
  ReLU layer;
  EXPECT_TRUE(layer.params().empty());
}

}  // namespace
}  // namespace redcane::nn
