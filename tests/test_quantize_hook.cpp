#include "noise/quantize_hook.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "quant/quantizer.hpp"
#include "tensor/ops.hpp"
#include "tensor/random.hpp"

namespace redcane::noise {
namespace {

using capsnet::OpKind;

TEST(QuantizeHook, RoundTripsTensor) {
  Rng rng(1);
  Tensor x = ops::uniform(Shape{500}, -2.0, 2.0, rng);
  const Tensor ref = quant::quantize_dequantize(x, 8);
  QuantizeHook hook(8);
  hook.process("l", OpKind::kMacOutput, x);
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_EQ(x.at(i), ref.at(i));
  EXPECT_EQ(hook.tensors_quantized(), 1);
}

TEST(QuantizeHook, KindFilterSkipsOthers) {
  Rng rng(2);
  Tensor x = ops::uniform(Shape{100}, 0.0, 1.0, rng);
  const Tensor x0 = x;
  QuantizeHook hook(4, OpKind::kActivation);
  hook.process("l", OpKind::kMacOutput, x);
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_EQ(x.at(i), x0.at(i));
  EXPECT_EQ(hook.tensors_quantized(), 0);
  hook.process("l", OpKind::kActivation, x);
  EXPECT_EQ(hook.tensors_quantized(), 1);
}

TEST(QuantizeHook, QuantizationIsIdempotent) {
  // Quantizing an already-quantized tensor with the same bit width must be
  // a no-op: the codes reproduce exactly.
  Rng rng(3);
  Tensor x = ops::uniform(Shape{300}, -1.0, 5.0, rng);
  QuantizeHook hook(6);
  hook.process("l", OpKind::kActivation, x);
  const Tensor once = x;
  hook.process("l", OpKind::kActivation, x);
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_NEAR(x.at(i), once.at(i), 1e-6);
}

TEST(QuantizeHook, FewerBitsMoreDistortion) {
  Rng rng(4);
  const Tensor base = ops::uniform(Shape{2000}, 0.0, 1.0, rng);
  auto distortion = [&](int bits) {
    Tensor x = base;
    QuantizeHook hook(bits);
    hook.process("l", OpKind::kMacOutput, x);
    double e = 0.0;
    for (std::int64_t i = 0; i < x.numel(); ++i) {
      e += std::abs(x.at(i) - base.at(i));
    }
    return e;
  };
  EXPECT_GT(distortion(3), distortion(5));
  EXPECT_GT(distortion(5), distortion(8));
}

}  // namespace
}  // namespace redcane::noise
