// Randomized gradient-check sweeps over layer configurations: the same
// central-difference validation as the targeted tests, fuzzed across
// kernel sizes, strides, paddings, channel counts and seeds.
#include <gtest/gtest.h>

#include <cmath>

#include "capsnet/conv_caps2d.hpp"
#include "capsnet/squash.hpp"
#include "nn/conv2d.hpp"
#include "tensor/ops.hpp"
#include "tensor/random.hpp"

namespace redcane {
namespace {

struct ConvCase {
  std::int64_t hw;
  std::int64_t cin;
  std::int64_t cout;
  std::int64_t kernel;
  std::int64_t stride;
  std::int64_t pad;
  std::uint64_t seed;
};

void PrintTo(const ConvCase& c, std::ostream* os) {
  *os << "hw" << c.hw << "_c" << c.cin << "to" << c.cout << "_k" << c.kernel << "s"
      << c.stride << "p" << c.pad;
}

class ConvGradSweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGradSweep, InputAndWeightGradientsMatchNumeric) {
  const ConvCase cc = GetParam();
  Rng rng(cc.seed);
  nn::Conv2DSpec spec;
  spec.in_channels = cc.cin;
  spec.out_channels = cc.cout;
  spec.kernel = cc.kernel;
  spec.stride = cc.stride;
  spec.pad = cc.pad;
  nn::Conv2D layer("sweep", spec, rng);
  Tensor x = ops::uniform(Shape{2, cc.hw, cc.hw, cc.cin}, -1.0, 1.0, rng);

  const Tensor y0 = layer.forward(x, true);
  const Tensor grad_in = layer.backward(y0);  // L = 0.5 sum y^2.

  auto loss_at = [&](Tensor& target, std::int64_t idx, float eps) {
    const float saved = target.at(idx);
    target.at(idx) = saved + eps;
    const Tensor y = layer.forward(x, false);
    target.at(idx) = saved;
    double l = 0.0;
    for (float v : y.data()) l += 0.5 * static_cast<double>(v) * v;
    return l;
  };

  // Probe a deterministic random subset of indices.
  Rng probe(cc.seed ^ 0xABCD);
  for (int p = 0; p < 6; ++p) {
    const auto idx =
        static_cast<std::int64_t>(probe.uniform_index(static_cast<std::uint64_t>(x.numel())));
    const double num = (loss_at(x, idx, 1e-3F) - loss_at(x, idx, -1e-3F)) / 2e-3;
    EXPECT_NEAR(grad_in.at(idx), num, 5e-2) << "input idx " << idx;
  }
  nn::Param& w = layer.weight();
  for (int p = 0; p < 6; ++p) {
    const auto idx = static_cast<std::int64_t>(
        probe.uniform_index(static_cast<std::uint64_t>(w.value.numel())));
    const double num = (loss_at(w.value, idx, 1e-3F) - loss_at(w.value, idx, -1e-3F)) / 2e-3;
    EXPECT_NEAR(w.grad.at(idx), num, 5e-2) << "weight idx " << idx;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvGradSweep,
    ::testing::Values(ConvCase{5, 1, 2, 3, 1, 0, 11}, ConvCase{6, 2, 3, 3, 1, 1, 22},
                      ConvCase{8, 3, 2, 3, 2, 1, 33}, ConvCase{7, 2, 2, 5, 1, 2, 44},
                      ConvCase{9, 1, 4, 5, 2, 0, 55}, ConvCase{4, 4, 4, 1, 1, 0, 66},
                      ConvCase{10, 2, 2, 3, 3, 1, 77}),
    [](const ::testing::TestParamInfo<ConvCase>& info) {
      const ConvCase& c = info.param;
      return "hw" + std::to_string(c.hw) + "_c" + std::to_string(c.cin) + "to" +
             std::to_string(c.cout) + "_k" + std::to_string(c.kernel) + "s" +
             std::to_string(c.stride) + "p" + std::to_string(c.pad);
    });

/// Squash gradient fuzz across capsule dimensions and magnitudes.
class SquashGradSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(SquashGradSweep, MatchesNumeric) {
  const std::int64_t d = GetParam();
  Rng rng(static_cast<std::uint64_t>(d) * 17);
  // Include small-norm rows (the eps-guarded regime).
  Tensor s = ops::uniform(Shape{6, d}, -3.0, 3.0, rng);
  for (std::int64_t k = 0; k < d; ++k) s(0, k) *= 0.01F;
  const Tensor v0 = capsnet::squash(s);
  const Tensor grad_s = capsnet::squash_backward(s, v0);
  auto loss_at = [&](std::int64_t idx, float eps) {
    const float saved = s.at(idx);
    s.at(idx) = saved + eps;
    const Tensor v = capsnet::squash(s);
    s.at(idx) = saved;
    double l = 0.0;
    for (float x : v.data()) l += 0.5 * static_cast<double>(x) * x;
    return l;
  };
  for (std::int64_t idx = 0; idx < s.numel(); ++idx) {
    const double num = (loss_at(idx, 1e-3F) - loss_at(idx, -1e-3F)) / 2e-3;
    EXPECT_NEAR(grad_s.at(idx), num, 3e-3) << idx;
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, SquashGradSweep, ::testing::Values(1, 2, 4, 8, 16),
                         [](const ::testing::TestParamInfo<std::int64_t>& info) {
                           return "d" + std::to_string(info.param);
                         });

/// ConvCaps2D full-chain (conv + BN + squash) backward shape/finite checks
/// across capsule geometries.
struct CapsCase {
  std::int64_t ti, di, to, dd, stride;
};

class CapsGradSweep : public ::testing::TestWithParam<CapsCase> {};

TEST_P(CapsGradSweep, BackwardIsFiniteAndShaped) {
  const CapsCase cc = GetParam();
  Rng rng(99);
  capsnet::ConvCaps2DSpec spec;
  spec.in_types = cc.ti;
  spec.in_dim = cc.di;
  spec.out_types = cc.to;
  spec.out_dim = cc.dd;
  spec.stride = cc.stride;
  capsnet::ConvCaps2D layer("sweep", spec, rng);
  const Tensor x = ops::uniform(Shape{2, 6, 6, cc.ti, cc.di}, -1.0, 1.0, rng);
  const Tensor v = layer.forward(x, true, nullptr);
  const Tensor g = layer.backward(v);
  EXPECT_EQ(g.shape(), x.shape());
  for (float gv : g.data()) EXPECT_TRUE(std::isfinite(gv));
  bool any_nonzero = false;
  for (float gv : g.data()) any_nonzero = any_nonzero || gv != 0.0F;
  EXPECT_TRUE(any_nonzero);
}

INSTANTIATE_TEST_SUITE_P(Geometries, CapsGradSweep,
                         ::testing::Values(CapsCase{1, 4, 1, 4, 1}, CapsCase{2, 4, 2, 8, 1},
                                           CapsCase{4, 2, 2, 4, 2}, CapsCase{2, 8, 4, 4, 2}),
                         [](const ::testing::TestParamInfo<CapsCase>& info) {
                           const CapsCase& c = info.param;
                           return "t" + std::to_string(c.ti) + "d" + std::to_string(c.di) +
                                  "_t" + std::to_string(c.to) + "d" + std::to_string(c.dd) +
                                  "_s" + std::to_string(c.stride);
                         });

}  // namespace
}  // namespace redcane
