#include "tensor/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "tensor/random.hpp"

namespace redcane {
namespace {

TEST(Moments, SimpleSample) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const stats::Moments m = stats::moments(std::span<const double>(xs));
  EXPECT_DOUBLE_EQ(m.mean, 2.5);
  EXPECT_DOUBLE_EQ(m.min, 1.0);
  EXPECT_DOUBLE_EQ(m.max, 4.0);
  EXPECT_DOUBLE_EQ(m.range(), 3.0);
  EXPECT_NEAR(m.stddev, 1.1180339887, 1e-9);
  EXPECT_EQ(m.count, 4);
}

TEST(Moments, EmptyIsZero) {
  const std::vector<double> xs;
  const stats::Moments m = stats::moments(std::span<const double>(xs));
  EXPECT_EQ(m.count, 0);
  EXPECT_EQ(m.mean, 0.0);
}

TEST(Moments, TensorOverload) {
  const Tensor t(Shape{3}, {-1.0F, 0.0F, 1.0F});
  const stats::Moments m = stats::moments(t);
  EXPECT_DOUBLE_EQ(m.mean, 0.0);
  EXPECT_DOUBLE_EQ(m.range(), 2.0);
}

TEST(Histogram, CountsAndClamping) {
  stats::Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // clamped to bin 0
  h.add(15.0);   // clamped to bin 9
  EXPECT_EQ(h.count(0), 2);
  EXPECT_EQ(h.count(9), 2);
  EXPECT_EQ(h.total(), 4);
}

TEST(Histogram, BinCenters) {
  const stats::Histogram h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_center(9), 9.5);
}

TEST(Histogram, Frequencies) {
  stats::Histogram h(0.0, 1.0, 2);
  h.add(0.25);
  h.add(0.25);
  h.add(0.75);
  EXPECT_NEAR(h.frequency(0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(h.frequency(1), 1.0 / 3.0, 1e-12);
}

TEST(GaussianFit, NormalSamplesScoreWell) {
  Rng rng(1);
  stats::Histogram h(-5.0, 5.0, 64);
  for (int i = 0; i < 100000; ++i) h.add(rng.normal());
  EXPECT_LT(stats::gaussian_fit_distance(h, 0.0, 1.0), 0.05);
}

TEST(GaussianFit, UniformSamplesScoreWorse) {
  Rng rng(1);
  stats::Histogram h(-5.0, 5.0, 64);
  for (int i = 0; i < 100000; ++i) h.add(rng.uniform(-4.0, 4.0));
  const stats::Moments m = [] {
    Rng r2(1);
    std::vector<double> xs;
    for (int i = 0; i < 100000; ++i) xs.push_back(r2.uniform(-4.0, 4.0));
    return stats::moments(std::span<const double>(xs));
  }();
  EXPECT_GT(stats::gaussian_fit_distance(h, m.mean, m.stddev), 0.2);
}

TEST(GaussianFit, ExpectedCountsSumToTotal) {
  const stats::Histogram h(-4.0, 4.0, 32);
  const std::vector<double> exp = stats::gaussian_expected_counts(h, 0.0, 1.0, 1000);
  double sum = 0.0;
  for (double e : exp) sum += e;
  EXPECT_NEAR(sum, 1000.0, 1.0);  // Mass within +/-4 sigma.
}

TEST(GaussianFit, DegenerateStddevPutsMassAtMean) {
  stats::Histogram h(-1.0, 1.0, 4);
  h.add(0.6);
  const std::vector<double> exp = stats::gaussian_expected_counts(h, 0.6, 0.0, 10);
  EXPECT_DOUBLE_EQ(exp[3], 10.0);
}

}  // namespace
}  // namespace redcane
