#include "approx/error_profile.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "approx/library.hpp"

namespace redcane::approx {
namespace {

ProfileConfig quick(int chain = 1) {
  ProfileConfig c;
  c.samples = 20000;
  c.chain_length = chain;
  c.seed = 42;
  return c;
}

TEST(ErrorProfile, ExactComponentHasZeroNoise) {
  const ErrorProfile p =
      profile_multiplier(exact_multiplier(), InputDistribution::uniform(), quick());
  EXPECT_EQ(p.nm, 0.0);
  EXPECT_EQ(p.na, 0.0);
  EXPECT_EQ(p.error_moments.stddev, 0.0);
}

TEST(ErrorProfile, DrumNgrIsSmallAndNearlyUnbiased) {
  const Multiplier& m = multiplier_by_analog("mul8u_NGR");
  const ErrorProfile p = profile_multiplier(m, InputDistribution::uniform(), quick(9));
  EXPECT_GT(p.nm, 0.0);
  EXPECT_LT(p.nm, 0.01);               // Small-error component.
  EXPECT_LT(std::abs(p.na), 0.002);    // Unbiased family.
}

TEST(ErrorProfile, MitchellHasNegativeBias) {
  const ErrorProfile p = profile_multiplier(multiplier_by_name("axm_mitchell"),
                                            InputDistribution::uniform(), quick(9));
  EXPECT_LT(p.na, 0.0);
}

TEST(ErrorProfile, NmOrderingFollowsAggressiveness) {
  const auto nm_of = [](const char* name) {
    return profile_multiplier(multiplier_by_name(name), InputDistribution::uniform(), quick(9))
        .nm;
  };
  EXPECT_LT(nm_of("axm_res2_14vp"), nm_of("axm_res8"));
  EXPECT_LT(nm_of("axm_drum6_2hh"), nm_of("axm_drum4_dm1"));
  EXPECT_LT(nm_of("axm_drum4_dm1"), nm_of("axm_drum3_jv3"));
  EXPECT_LT(nm_of("axm_op2_19db"), nm_of("axm_op3_12n4"));
}

TEST(ErrorProfile, MajorityOfLibraryIsGaussianLike) {
  // Paper Sec. III-B: 31 of 35 components show Gaussian-like error
  // distributions in the 9-MAC accumulation scenario.
  int gaussian_like = 0;
  for (const Multiplier* m : multiplier_library()) {
    const ProfileConfig cfg = quick(9);
    if (profile_multiplier(*m, InputDistribution::uniform(), cfg).gaussian_like) {
      ++gaussian_like;
    }
  }
  EXPECT_GE(gaussian_like, 28);
  EXPECT_LE(gaussian_like, 35);
}

TEST(ErrorProfile, AccumulationImprovesGaussianity) {
  // CLT: the 81-MAC error of a component is closer to Gaussian than the
  // single-multiplication error.
  const Multiplier& m = multiplier_by_name("axm_op3_12n4");
  const ErrorProfile p1 = profile_multiplier(m, InputDistribution::uniform(), quick(1));
  const ErrorProfile p81 = profile_multiplier(m, InputDistribution::uniform(), quick(81));
  EXPECT_LT(p81.gaussian_distance, p1.gaussian_distance);
}

TEST(ErrorProfile, EmpiricalDistributionChangesNm) {
  // Paper Table IV: modeled (uniform) vs real input distributions yield
  // different NM — the parameters are dataset dependent.
  const Multiplier& m = multiplier_by_analog("mul8u_YX7");
  const ErrorProfile uni = profile_multiplier(m, InputDistribution::uniform(), quick(9));
  // A low-valued empirical pool (activations concentrate near zero).
  std::vector<std::uint8_t> pool;
  for (int i = 0; i < 256; ++i) pool.push_back(static_cast<std::uint8_t>(i % 64));
  const ErrorProfile emp =
      profile_multiplier(m, InputDistribution::empirical(pool), quick(9));
  EXPECT_NE(uni.nm, emp.nm);
  EXPECT_LT(emp.nm, uni.nm);  // Smaller operands -> smaller absolute errors.
}

TEST(ErrorProfile, HistogramCoversAllSamples) {
  const ErrorProfile p = profile_multiplier(multiplier_by_name("axm_bam8_96d"),
                                            InputDistribution::uniform(), quick(9));
  const stats::Histogram h = error_histogram(p, 64);
  EXPECT_EQ(h.total(), static_cast<std::int64_t>(p.error_samples.size()));
}

TEST(InputDistribution, UniformCoversByteRange) {
  const InputDistribution d = InputDistribution::uniform();
  Rng rng(1);
  bool seen_low = false;
  bool seen_high = false;
  for (int i = 0; i < 10000; ++i) {
    const std::uint8_t v = d.sample(rng);
    if (v < 16) seen_low = true;
    if (v > 239) seen_high = true;
  }
  EXPECT_TRUE(seen_low);
  EXPECT_TRUE(seen_high);
}

TEST(InputDistribution, EmpiricalReplaysPool) {
  const InputDistribution d = InputDistribution::empirical({7, 7, 7});
  Rng rng(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(d.sample(rng), 7);
}

}  // namespace
}  // namespace redcane::approx
