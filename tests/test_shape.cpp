#include "tensor/shape.hpp"

#include <gtest/gtest.h>

namespace redcane {
namespace {

TEST(Shape, DefaultIsScalar) {
  const Shape s;
  EXPECT_EQ(s.rank(), 0U);
  EXPECT_EQ(s.numel(), 1);
}

TEST(Shape, InitializerList) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3U);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.dim(1), 3);
  EXPECT_EQ(s.dim(2), 4);
  EXPECT_EQ(s.numel(), 24);
}

TEST(Shape, NegativeAxisIndexing) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.dim(-1), 4);
  EXPECT_EQ(s.dim(-2), 3);
  EXPECT_EQ(s.dim(-3), 2);
}

TEST(Shape, RowMajorStrides) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.stride(0), 12);
  EXPECT_EQ(s.stride(1), 4);
  EXPECT_EQ(s.stride(2), 1);
  EXPECT_EQ(s.stride(-1), 1);
}

TEST(Shape, PushBackGrowsRank) {
  Shape s;
  s.push_back(5);
  s.push_back(7);
  EXPECT_EQ(s.rank(), 2U);
  EXPECT_EQ(s.numel(), 35);
}

TEST(Shape, WithoutAxis) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.without_axis(1), (Shape{2, 4}));
  EXPECT_EQ(s.without_axis(-1), (Shape{2, 3}));
}

TEST(Shape, WithAppended) {
  const Shape s{2, 3};
  EXPECT_EQ(s.with_appended(4), (Shape{2, 3, 4}));
}

TEST(Shape, EqualityAndToString) {
  EXPECT_EQ((Shape{1, 2}), (Shape{1, 2}));
  EXPECT_NE((Shape{1, 2}), (Shape{2, 1}));
  EXPECT_NE((Shape{1, 2}), (Shape{1, 2, 1}));
  EXPECT_EQ((Shape{1, 2}).to_string(), "[1, 2]");
}

TEST(Shape, ZeroExtentGivesZeroNumel) {
  const Shape s{4, 0, 3};
  EXPECT_EQ(s.numel(), 0);
}

}  // namespace
}  // namespace redcane
