#include <gtest/gtest.h>

#include <set>

#include "capsnet/capsnet_model.hpp"
#include "capsnet/deepcaps_model.hpp"
#include "capsnet/serialize.hpp"
#include "tensor/ops.hpp"

namespace redcane::capsnet {
namespace {

TEST(CapsNetModel, TinyForwardShape) {
  Rng rng(1);
  CapsNetModel model(CapsNetConfig::tiny(), rng);
  Rng drng(2);
  const Tensor x = ops::uniform(Shape{2, 28, 28, 1}, 0.0, 1.0, drng);
  const Tensor v = model.forward(x, false, nullptr);
  EXPECT_EQ(v.shape(), (Shape{2, 10, 8}));
  EXPECT_EQ(model.num_classes(), 10);
  EXPECT_EQ(model.input_shape(), (Shape{28, 28, 1}));
}

TEST(CapsNetModel, PaperConfigMatchesPublication) {
  const CapsNetConfig cfg = CapsNetConfig::paper();
  EXPECT_EQ(cfg.conv1_channels, 256);
  EXPECT_EQ(cfg.primary_types, 32);
  EXPECT_EQ(cfg.primary_dim, 8);
  EXPECT_EQ(cfg.class_dim, 16);
  EXPECT_EQ(cfg.routing_iters, 3);
}

TEST(CapsNetModel, LayerNames) {
  Rng rng(3);
  CapsNetModel model(CapsNetConfig::tiny(), rng);
  const auto names = model.layer_names();
  ASSERT_EQ(names.size(), 3U);
  EXPECT_EQ(names[0], "Conv1");
  EXPECT_EQ(names[2], "ClassCaps");
}

TEST(CapsNetModel, DeterministicForward) {
  Rng rng_a(7);
  Rng rng_b(7);
  CapsNetModel a(CapsNetConfig::tiny(), rng_a);
  CapsNetModel b(CapsNetConfig::tiny(), rng_b);
  Rng drng(4);
  const Tensor x = ops::uniform(Shape{1, 28, 28, 1}, 0.0, 1.0, drng);
  const Tensor va = a.forward(x, false, nullptr);
  const Tensor vb = b.forward(x, false, nullptr);
  for (std::int64_t i = 0; i < va.numel(); ++i) EXPECT_EQ(va.at(i), vb.at(i));
}

TEST(DeepCapsModel, TinyForwardShape) {
  Rng rng(5);
  DeepCapsModel model(DeepCapsConfig::tiny(), rng);
  Rng drng(6);
  const Tensor x = ops::uniform(Shape{2, 16, 16, 3}, 0.0, 1.0, drng);
  const Tensor v = model.forward(x, false, nullptr);
  EXPECT_EQ(v.shape(), (Shape{2, 10, 8}));
}

TEST(DeepCapsModel, Has18NamedLayers) {
  Rng rng(7);
  DeepCapsModel model(DeepCapsConfig::tiny(), rng);
  const auto names = model.layer_names();
  ASSERT_EQ(names.size(), 18U);
  EXPECT_EQ(names.front(), "Conv2D");
  EXPECT_EQ(names[1], "Caps2D1");
  EXPECT_EQ(names[15], "Caps2D15");
  EXPECT_EQ(names[16], "Caps3D");
  EXPECT_EQ(names.back(), "ClassCaps");
  const std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size());
}

TEST(DeepCapsModel, PaperConfigMatchesPublication) {
  const DeepCapsConfig cfg = DeepCapsConfig::paper();
  EXPECT_EQ(cfg.input_hw, 32);
  EXPECT_EQ(cfg.types, 32);
  EXPECT_EQ(cfg.dim_block1, 4);
  EXPECT_EQ(cfg.dim_rest, 8);
  EXPECT_EQ(cfg.class_dim, 16);
}

TEST(DeepCapsModel, BackwardProducesInputGradient) {
  Rng rng(8);
  DeepCapsModel model(DeepCapsConfig::tiny(), rng);
  Rng drng(9);
  // Batch > 1: batch normalization over a single sample at the final 1x1
  // spatial extent would normalize the activations away.
  const Tensor x = ops::uniform(Shape{4, 16, 16, 3}, 0.0, 1.0, drng);
  const Tensor v = model.forward(x, true, nullptr);
  const Tensor g = model.backward(v);
  EXPECT_EQ(g.shape(), x.shape());
  // Gradients reach the parameters (at least most of them are non-zero).
  int nonzero_params = 0;
  for (nn::Param* p : model.params()) {
    for (float gv : p->grad.data()) {
      if (gv != 0.0F) {
        ++nonzero_params;
        break;
      }
    }
  }
  EXPECT_GT(nonzero_params, static_cast<int>(model.params().size() / 2));
}

TEST(Serialize, RoundTripRestoresOutputs) {
  Rng rng_a(10);
  CapsNetModel a(CapsNetConfig::tiny(), rng_a);
  Rng drng(11);
  const Tensor x = ops::uniform(Shape{1, 28, 28, 1}, 0.0, 1.0, drng);
  const Tensor va = a.forward(x, false, nullptr);

  const std::string path = ::testing::TempDir() + "/redcane_params.bin";
  ASSERT_TRUE(save_params(a, path));

  Rng rng_b(999);  // Different init.
  CapsNetModel b(CapsNetConfig::tiny(), rng_b);
  ASSERT_TRUE(load_params(b, path));
  const Tensor vb = b.forward(x, false, nullptr);
  for (std::int64_t i = 0; i < va.numel(); ++i) EXPECT_EQ(va.at(i), vb.at(i));
}

TEST(Serialize, RejectsMismatchedModel) {
  Rng rng(12);
  CapsNetModel small(CapsNetConfig::tiny(), rng);
  const std::string path = ::testing::TempDir() + "/redcane_mismatch.bin";
  ASSERT_TRUE(save_params(small, path));
  Rng rng2(13);
  DeepCapsModel other(DeepCapsConfig::tiny(), rng2);
  EXPECT_FALSE(load_params(other, path));
}

TEST(Serialize, MissingFileFailsCleanly) {
  Rng rng(14);
  CapsNetModel m(CapsNetConfig::tiny(), rng);
  EXPECT_FALSE(load_params(m, "/nonexistent/path/params.bin"));
}

}  // namespace
}  // namespace redcane::capsnet
