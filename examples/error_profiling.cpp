// Error profiling walk-through: pick approximate multipliers from the
// library, characterize their arithmetic-error distributions over MAC
// chains (paper Sec. III-B), and derive the NM/NA noise parameters that
// the resilience analysis consumes.
//
//   ./error_profiling [component_name]
#include <cstdio>
#include <string>

#include "approx/error_profile.hpp"
#include "approx/library.hpp"

using namespace redcane;

int main(int argc, char** argv) {
  const std::string target = argc > 1 ? argv[1] : "";

  std::printf("%-18s %-10s %5s | %9s %9s %9s | %8s %8s %5s\n", "component", "family",
              "P[uW]", "std(1)", "std(9)", "std(81)", "NM(9)", "NA(9)", "gauss");

  for (const approx::Multiplier* m : approx::multiplier_library()) {
    if (!target.empty() && m->info().name != target) continue;

    double stds[3] = {0, 0, 0};
    approx::ErrorProfile nine;
    int idx = 0;
    for (int chain : {1, 9, 81}) {
      approx::ProfileConfig cfg;
      cfg.samples = 30000;
      cfg.chain_length = chain;
      cfg.seed = 12;
      const approx::ErrorProfile p =
          approx::profile_multiplier(*m, approx::InputDistribution::uniform(), cfg);
      stds[idx++] = p.error_moments.stddev;
      if (chain == 9) nine = p;
    }
    std::printf("%-18s %-10s %5.0f | %9.1f %9.1f %9.1f | %8.5f %+8.5f %5s\n",
                m->info().name.c_str(), m->info().family.c_str(), m->info().power_uw,
                stds[0], stds[1], stds[2], nine.nm, nine.na,
                nine.gaussian_like ? "yes" : "NO");
  }

  std::printf(
      "\nReading the table: std grows with MAC-chain length (error accumulation); "
      "NM = std/range and NA = mean/range at chain length 9 (3x3 kernels) are the "
      "noise parameters injected by the resilience analysis. Components marked "
      "'NO' are not Gaussian-like and are excluded from automatic selection.\n");
  return 0;
}
