// Designing an approximate CapsNet and pricing it: runs the methodology,
// maps each layer's selected multiplier into the energy model, and prints
// the projected energy of the approximated inference next to the accurate
// one — the end-to-end "output of our methodology is the approximated
// version of a given CapsNet" story of the paper.
//
//   ./approx_design_energy
#include <cstdio>

#include "capsnet/capsnet_model.hpp"
#include "capsnet/trainer.hpp"
#include "core/methodology.hpp"
#include "data/synthetic.hpp"
#include "energy/energy_model.hpp"

using namespace redcane;

int main() {
  const data::Dataset ds = data::make_benchmark(data::DatasetKind::kFashionMnist, 28,
                                                /*train=*/1000, /*test=*/250);
  Rng rng(13);
  capsnet::CapsNetModel model(capsnet::CapsNetConfig::tiny(), rng);

  std::printf("training %s on %s...\n", model.name().c_str(), ds.name.c_str());
  capsnet::TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 25;
  tc.lr = 2e-3;
  capsnet::train(model, ds.train_x, ds.train_y, tc);

  core::MethodologyConfig mc;
  mc.resilience.sweep.nms = {0.5, 0.1, 0.05, 0.01, 0.005, 0.001, 0.0};
  mc.profile_chain_length = 81;
  const core::MethodologyResult result =
      core::run_redcane(model, ds.test_x, ds.test_y, ds.name, mc);

  // Map the per-layer MAC-output selections into the energy model.
  std::vector<energy::LayerMultiplierChoice> choices;
  std::printf("\nselected multipliers (MAC-output sites):\n");
  for (const core::SiteSelection& s : result.selections) {
    if (s.site.kind != capsnet::OpKind::kMacOutput) continue;
    choices.push_back({s.site.layer, s.component});
    std::printf("  %-14s -> %-18s (tolerable NM %.4g, power saving %.1f%%)\n",
                s.site.layer.c_str(), s.component->info().name.c_str(), s.tolerable_nm,
                s.power_saving() * 100.0);
  }

  const auto layers = energy::count_capsnet_layers(model.config());
  const energy::UnitEnergy ue = energy::UnitEnergy::paper_45nm();
  const double exact_pj = energy::approximated_energy_pj(layers, ue, {});
  const double approx_pj = energy::approximated_energy_pj(layers, ue, choices);

  std::printf("\nenergy per inference (computational path):\n");
  std::printf("  accurate:     %10.2f nJ\n", exact_pj / 1e3);
  std::printf("  approximated: %10.2f nJ  (saving %.1f%%)\n", approx_pj / 1e3,
              (1.0 - approx_pj / exact_pj) * 100.0);
  std::printf("\nbaseline accuracy was %.1f%%; every selected component respects the "
              "per-operation NM budget, so the designed CapsNet trades energy for "
              "at most ~%.1f%% accuracy.\n",
              result.baseline_accuracy * 100.0, 1.0);
  return 0;
}
