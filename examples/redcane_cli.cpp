// redcane_cli — command-line driver for the library.
//
//   redcane_cli analyze --model capsnet --dataset mnist [--epochs 8]
//                       [--train 800] [--test 250] [--tolerance 1.0]
//                       [--json out.json] [--csv prefix]
//   redcane_cli profile [--chain 9] [--samples 30000]
//   redcane_cli energy  --model deepcaps|capsnet [--profile paper|tiny]
//
// `analyze` trains the requested model on the synthetic dataset, runs the
// 6-step methodology, prints the report and optionally exports JSON/CSV.
// `profile` dumps the component library's NM/NA table as CSV.
// `energy` prints op counts and the Fig. 4-style breakdown.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "capsnet/capsnet_model.hpp"
#include "capsnet/deepcaps_model.hpp"
#include "capsnet/trainer.hpp"
#include "cli_common.hpp"
#include "core/export.hpp"
#include "core/methodology.hpp"
#include "core/report.hpp"
#include "data/synthetic.hpp"
#include "energy/op_counter.hpp"

using namespace redcane;
using examples::Args;

namespace {

int cmd_analyze(const Args& args) {
  const std::string model_name = args.get("--model", "capsnet");
  const std::string dataset_name = args.get("--dataset", "mnist");
  const auto epochs = static_cast<int>(args.get_num("--epochs", 8));
  const auto train_n = static_cast<std::int64_t>(args.get_num("--train", 800));
  const auto test_n = static_cast<std::int64_t>(args.get_num("--test", 250));

  const data::DatasetKind kind = examples::dataset_kind_of(dataset_name);
  const bool deepcaps = model_name == "deepcaps";
  const std::int64_t hw = deepcaps ? 16 : 28;
  const data::Dataset ds = examples::load_cli_dataset(args, kind, hw, train_n, test_n);

  Rng rng(static_cast<std::uint64_t>(args.get_num("--seed", 7)));
  std::unique_ptr<capsnet::CapsModel> model;
  if (deepcaps) {
    capsnet::DeepCapsConfig cfg = capsnet::DeepCapsConfig::tiny();
    cfg.input_channels = ds.train_x.shape().dim(3);
    model = std::make_unique<capsnet::DeepCapsModel>(cfg, rng);
  } else {
    model = std::make_unique<capsnet::CapsNetModel>(capsnet::CapsNetConfig::tiny(), rng);
  }

  std::printf("training %s on %s (%d epochs)...\n", model->name().c_str(),
              ds.name.c_str(), epochs);
  capsnet::TrainConfig tc;
  tc.epochs = epochs;
  tc.batch_size = 25;
  tc.lr = 3e-3;
  tc.on_epoch = [](int e, double loss, double acc) {
    std::printf("  epoch %2d  loss %.4f  train-acc %.3f\n", e, loss, acc);
  };
  capsnet::train(*model, ds.train_x, ds.train_y, tc);

  core::MethodologyConfig mc;
  mc.tolerance_pct = args.get_num("--tolerance", 1.0);
  mc.profile_chain_length = deepcaps ? 9 : 81;  // 3x3 vs 9x9 kernels.
  const core::MethodologyResult result =
      core::run_redcane(*model, ds.test_x, ds.test_y, ds.name, mc);
  std::printf("%s", core::render_report(result).c_str());

  const std::string json_path = args.get("--json", "");
  if (!json_path.empty()) {
    if (!core::write_text_file(json_path, core::result_to_json(result))) {
      std::fprintf(stderr, "could not write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  const std::string csv_prefix = args.get("--csv", "");
  if (!csv_prefix.empty()) {
    std::vector<core::ResilienceCurve> all = result.group_curves;
    all.insert(all.end(), result.layer_curves.begin(), result.layer_curves.end());
    const bool ok =
        core::write_text_file(csv_prefix + "_curves.csv", core::curves_to_csv(all)) &&
        core::write_text_file(csv_prefix + "_selections.csv",
                              core::selections_to_csv(result.selections));
    if (!ok) {
      std::fprintf(stderr, "could not write CSVs with prefix %s\n", csv_prefix.c_str());
      return 1;
    }
    std::printf("wrote %s_curves.csv and %s_selections.csv\n", csv_prefix.c_str(),
                csv_prefix.c_str());
  }
  return 0;
}

int cmd_profile(const Args& args) {
  const auto chain = static_cast<int>(args.get_num("--chain", 9));
  const auto samples = static_cast<std::int64_t>(args.get_num("--samples", 30000));
  const auto profiled = core::profile_library(approx::InputDistribution::uniform(), chain,
                                              samples, 7);
  std::fputs(core::profiles_to_csv(profiled).c_str(), stdout);
  return 0;
}

int cmd_energy(const Args& args) {
  const std::string model_name = args.get("--model", "deepcaps");
  const std::string profile = args.get("--profile", "paper");
  std::vector<energy::LayerOps> layers;
  if (model_name == "deepcaps") {
    layers = energy::count_deepcaps_layers(profile == "tiny"
                                               ? capsnet::DeepCapsConfig::tiny()
                                               : capsnet::DeepCapsConfig::paper());
  } else {
    layers = energy::count_capsnet_layers(profile == "tiny"
                                              ? capsnet::CapsNetConfig::tiny()
                                              : capsnet::CapsNetConfig::paper());
  }
  const energy::UnitEnergy ue = energy::UnitEnergy::paper_45nm();
  energy::OpCounts total;
  std::printf("%-12s %14s %14s %14s\n", "layer", "mults", "adds", "energy [nJ]");
  for (const energy::LayerOps& l : layers) {
    std::printf("%-12s %14llu %14llu %14.2f\n", l.layer.c_str(),
                static_cast<unsigned long long>(l.ops.mul),
                static_cast<unsigned long long>(l.ops.add), l.ops.energy_pj(ue) / 1e3);
    total += l.ops;
  }
  std::printf("%-12s %14llu %14llu %14.2f\n", "TOTAL",
              static_cast<unsigned long long>(total.mul),
              static_cast<unsigned long long>(total.add), total.energy_pj(ue) / 1e3);
  std::printf("\nenergy shares: mult %.1f%%, add %.1f%%\n",
              total.energy_share(energy::OpType::kMul, ue) * 100.0,
              total.energy_share(energy::OpType::kAdd, ue) * 100.0);
  return 0;
}

void usage() {
  std::puts(
      "usage: redcane_cli <analyze|profile|energy> [flags]\n"
      "  analyze --model capsnet|deepcaps --dataset mnist|fashion|cifar10|svhn\n"
      "          [--epochs N] [--train N] [--test N] [--tolerance PP]\n"
      "          [--json FILE] [--csv PREFIX] [--seed N] [--data-dir DIR]\n"
      "  profile [--chain N] [--samples N]          (CSV to stdout)\n"
      "  energy  --model deepcaps|capsnet [--profile paper|tiny]");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const Args args(argc, argv);
  const std::string cmd = argv[1];
  if (cmd == "analyze") return cmd_analyze(args);
  if (cmd == "profile") return cmd_profile(args);
  if (cmd == "energy") return cmd_energy(args);
  usage();
  return 2;
}
