// redcane_serve — design an approximate CapsNet with ReD-CaNe, then serve
// it as a long-lived batched inference service next to the exact baseline.
//
//   redcane_serve [--smoke] [--model capsnet|deepcaps] [--dataset mnist|...]
//                 [--epochs N] [--train N] [--test N] [--workers N]
//                 [--batch N] [--delay-us N] [--out PREFIX]
//   redcane_serve --manifest PATH [--workers N] [--batch N] ...
//
// Without --manifest: trains the model, runs the 6-step methodology, writes
// a checkpoint (PREFIX.rdcn) + deployment manifest (PREFIX.manifest), then
// re-opens both through serve::ModelRegistry — the same loadable path a
// production deployment would take. With --manifest: skips design and
// serves an existing manifest.
//
// The serving phase drives synthetic traffic through the InferenceServer
// and reports throughput, p50/p99 latency, micro-batch statistics, the
// accuracy of both variants, and the exact-vs-designed prediction
// agreement — the deployed answer to "what does the approximate network
// cost me, per request".
//
// --smoke is the CI profile: a 20x20 tiny CapsNet, a reduced NM grid, two
// workers, and a pass/fail gate on the serving path staying sane.
//
// --faults SPEC (or env REDCANE_FAULTS) arms the deterministic fault
// injector for the whole run — useful for eyeballing the typed-error and
// degradation paths outside the chaos test suite.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "capsnet/capsnet_model.hpp"
#include "capsnet/deepcaps_model.hpp"
#include "capsnet/serialize.hpp"
#include "capsnet/trainer.hpp"
#include "cli_common.hpp"
#include "core/manifest.hpp"
#include "core/methodology.hpp"
#include "data/synthetic.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/attack_eval.hpp"
#include "serve/fault.hpp"
#include "serve/server.hpp"

using namespace redcane;
using examples::Args;

namespace {

using Clock = std::chrono::steady_clock;

struct TrafficReport {
  double elapsed_s = 0.0;
  std::vector<std::int64_t> exact_labels;     ///< Per test sample (-1 = errored).
  std::vector<std::int64_t> designed_labels;  ///< Per test sample.
  std::vector<std::int64_t> emulated_labels;  ///< Per test sample.
  std::int64_t errors = 0;        ///< Futures resolved with a failure code.
  std::int64_t degraded = 0;      ///< Served by exact under queue pressure.
};

/// Submits every test sample to all three variants (exact wave, designed
/// wave, emulated wave — same-variant runs are what the micro-batcher
/// coalesces) and waits for all results. A typed error (possible under
/// --faults) records label -1 and is tallied, never crashes the driver.
TrafficReport drive_traffic(serve::InferenceServer& server, const Tensor& test_x) {
  const std::int64_t n = test_x.shape().dim(0);
  TrafficReport report;
  std::vector<std::future<serve::ServeResult>> exact_futs;
  std::vector<std::future<serve::ServeResult>> designed_futs;
  std::vector<std::future<serve::ServeResult>> emulated_futs;
  const auto t0 = Clock::now();
  for (std::int64_t i = 0; i < n; ++i) {
    exact_futs.push_back(
        server.submit(capsnet::slice_rows(test_x, i, i + 1), serve::kVariantExact));
  }
  for (std::int64_t i = 0; i < n; ++i) {
    designed_futs.push_back(
        server.submit(capsnet::slice_rows(test_x, i, i + 1), serve::kVariantDesigned));
  }
  for (std::int64_t i = 0; i < n; ++i) {
    emulated_futs.push_back(
        server.submit(capsnet::slice_rows(test_x, i, i + 1), serve::kVariantEmulated));
  }
  const auto drain = [&report](std::vector<std::future<serve::ServeResult>>& futs,
                               std::vector<std::int64_t>& labels) {
    for (auto& f : futs) {
      const serve::ServeResult res = f.get();
      labels.push_back(res.ok() ? res.prediction.label : -1);
      if (!res.ok()) ++report.errors;
      if (res.ok() && res.prediction.degraded) ++report.degraded;
    }
  };
  drain(exact_futs, report.exact_labels);
  drain(designed_futs, report.designed_labels);
  drain(emulated_futs, report.emulated_labels);
  report.elapsed_s = std::chrono::duration<double>(Clock::now() - t0).count();
  return report;
}

double accuracy_of(const std::vector<std::int64_t>& pred,
                   const std::vector<std::int64_t>& labels) {
  std::int64_t hits = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == labels[i]) ++hits;
  }
  return pred.empty() ? 0.0 : static_cast<double>(hits) / static_cast<double>(pred.size());
}

/// Final path component (the manifest references its checkpoint relative
/// to the manifest's own directory).
std::string base_name(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

int run(const Args& args) {
  const bool smoke = args.has("--smoke");
  // Observability sinks: --trace-out arms span tracing now and writes
  // chrome://tracing JSON before exit; --metrics-out dumps the registry
  // exposition. REDCANE_TRACE / REDCANE_METRICS do the same from the env.
  const std::string trace_out = args.get("--trace-out", "");
  const std::string metrics_out = args.get("--metrics-out", "");
  if (!trace_out.empty()) obs::trace_arm(true);
  // Deterministic fault injection: --faults SPEC (or REDCANE_FAULTS in the
  // environment) arms a seed-driven plan for the whole run. The spec
  // grammar is fault::parse_spec's ("seed=N,stall=P,backend=P,...").
  std::string fault_spec = args.get("--faults", "");
  if (fault_spec.empty()) {
    if (const char* env = std::getenv("REDCANE_FAULTS")) fault_spec = env;
  }
  serve::fault::FaultConfig fault_cfg;
  if (!fault_spec.empty() && !serve::fault::parse_spec(fault_spec, fault_cfg)) {
    std::fprintf(stderr, "bad --faults spec '%s'\n", fault_spec.c_str());
    return 2;
  }
  std::optional<serve::fault::ScopedFaultPlan> fault_plan;
  if (fault_cfg.any()) {
    fault_plan.emplace(fault_cfg);
    std::printf("fault injection armed: %s\n", fault_spec.c_str());
  }
  std::string manifest_path = args.get("--manifest", "");
  const std::string model_name = args.get("--model", "capsnet");
  const bool deepcaps = model_name == "deepcaps";
  const std::string out_prefix = args.get("--out", smoke ? "serve_smoke" : "serve_design");
  const auto test_n = static_cast<std::int64_t>(args.get_num("--test", smoke ? 64 : 200));

  data::Dataset ds;
  std::unique_ptr<serve::ModelRegistry> registry;
  if (!manifest_path.empty()) {
    // ---- Serve an existing design: traffic geometry comes from the
    // manifest's model, not from CLI defaults.
    registry = serve::ModelRegistry::open(manifest_path);
    if (registry == nullptr) return 1;
    const Shape in = registry->model().input_shape();
    const data::DatasetKind kind = examples::dataset_kind_of(
        args.get("--dataset", in.dim(2) == 3 ? "cifar10" : "mnist"));
    ds = examples::load_cli_dataset(args, kind, in.dim(0), /*train_n=*/0, test_n);
    if (ds.test_x.shape().dim(3) != in.dim(2)) {
      std::fprintf(stderr, "dataset '%s' has %lld channels but %s expects %lld\n",
                   ds.name.c_str(), static_cast<long long>(ds.test_x.shape().dim(3)),
                   registry->manifest().model.c_str(), static_cast<long long>(in.dim(2)));
      return 2;
    }
  } else {
    // ---- Design phase: train, run ReD-CaNe, export checkpoint + manifest.
    const data::DatasetKind kind =
        examples::dataset_kind_of(args.get("--dataset", deepcaps ? "cifar10" : "mnist"));
    const std::int64_t hw =
        static_cast<std::int64_t>(args.get_num("--hw", deepcaps ? 16 : (smoke ? 20 : 28)));
    const auto train_n =
        static_cast<std::int64_t>(args.get_num("--train", smoke ? 240 : 600));
    ds = examples::load_cli_dataset(args, kind, hw, train_n, test_n);
    Rng rng(static_cast<std::uint64_t>(args.get_num("--seed", 7)));
    std::unique_ptr<capsnet::CapsModel> model;
    std::string profile = "tiny";
    if (deepcaps) {
      capsnet::DeepCapsConfig cfg = capsnet::DeepCapsConfig::tiny();
      cfg.input_hw = hw;
      cfg.input_channels = ds.train_x.shape().dim(3);
      model = std::make_unique<capsnet::DeepCapsModel>(cfg, rng);
    } else {
      capsnet::CapsNetConfig cfg = capsnet::CapsNetConfig::tiny();
      cfg.input_hw = hw;
      cfg.input_channels = ds.train_x.shape().dim(3);
      model = std::make_unique<capsnet::CapsNetModel>(cfg, rng);
    }

    const auto epochs = static_cast<int>(args.get_num("--epochs", smoke ? 3 : 6));
    std::printf("designing: training %s on %s (%d epochs, %lld samples)...\n",
                model->name().c_str(), ds.name.c_str(), epochs,
                static_cast<long long>(train_n));
    capsnet::TrainConfig tc;
    tc.epochs = epochs;
    tc.batch_size = 24;
    tc.lr = 3e-3;
    capsnet::train(*model, ds.train_x, ds.train_y, tc);

    core::MethodologyConfig mc;
    // Serving injects every site's component jointly, so per-operation
    // budgets compound (see bench_design_validation); half the paper's 1 pp
    // per-op budget keeps the deployed design within ~1 pp of exact.
    mc.tolerance_pct = args.get_num("--tolerance", 0.5);
    mc.profile_chain_length = deepcaps ? 9 : 81;
    if (smoke) {
      mc.resilience.sweep.nms = {0.5, 0.05, 0.005, 0.0};
      mc.profile_samples = 4000;
    }
    std::printf("running the 6-step methodology...\n");
    const core::MethodologyResult result =
        core::run_redcane(*model, ds.test_x, ds.test_y, ds.name, mc);
    std::printf("  baseline accuracy %.2f%%, %zu sites, mean MAC power saving %.1f%%\n",
                result.baseline_accuracy * 100.0, result.sites.size(),
                result.mean_mac_power_saving() * 100.0);

    const std::string ckpt_path = out_prefix + ".rdcn";
    manifest_path = out_prefix + ".manifest";
    if (!capsnet::save_params(*model, ckpt_path)) {
      std::fprintf(stderr, "cannot write checkpoint %s\n", ckpt_path.c_str());
      return 1;
    }
    // The manifest references its checkpoint relative to its own directory
    // (they sit side by side under out_prefix), so store the basename.
    const core::DeploymentManifest manifest = core::make_deployment_manifest(
        result, result.profiled, *model, profile, base_name(ckpt_path),
        /*noise_seed=*/2020);
    if (!core::save_manifest(manifest, manifest_path)) {
      std::fprintf(stderr, "cannot write manifest %s\n", manifest_path.c_str());
      return 1;
    }
    std::printf("wrote %s and %s\n\n", ckpt_path.c_str(), manifest_path.c_str());

    // Re-open through the deployment path — the same loadable route a
    // production rollout would take.
    registry = serve::ModelRegistry::open(manifest_path);
    if (registry == nullptr) return 1;
  }

  // ---- Serving phase.
  std::printf("serving %s (%lld designed noise sites, %lld emulated MAC layers, "
              "baseline %.2f%% at design time)\n",
              registry->manifest().model.c_str(),
              static_cast<long long>(registry->designed_noisy_sites()),
              static_cast<long long>(registry->emulated_sites()),
              registry->manifest().baseline_accuracy * 100.0);

  serve::ServerConfig sc;
  sc.workers = static_cast<int>(args.get_num("--workers", smoke ? 2 : 0));
  sc.max_batch = static_cast<std::int64_t>(args.get_num("--batch", smoke ? 8 : 16));
  sc.max_delay_us = static_cast<std::int64_t>(args.get_num("--delay-us", 2000));
  serve::InferenceServer server(*registry, sc);
  server.start();

  const TrafficReport traffic = drive_traffic(server, ds.test_x);
  server.shutdown();
  serve::ServerStats stats = server.stats();

  const double exact_acc = accuracy_of(traffic.exact_labels, ds.test_y);
  const double designed_acc = accuracy_of(traffic.designed_labels, ds.test_y);
  const double emulated_acc = accuracy_of(traffic.emulated_labels, ds.test_y);
  const double agreement = accuracy_of(traffic.designed_labels, traffic.exact_labels);
  const double emu_agreement = accuracy_of(traffic.emulated_labels, traffic.exact_labels);

  std::printf("\n--- serving report (%d workers, max_batch %lld, max_delay %lld us) ---\n",
              stats.workers, static_cast<long long>(sc.max_batch),
              static_cast<long long>(sc.max_delay_us));
  std::printf("requests: %lld in %.3f s  ->  %.1f req/s over %lld micro-batches "
              "(mean batch %.1f)\n",
              static_cast<long long>(stats.requests), traffic.elapsed_s,
              static_cast<double>(stats.requests) / traffic.elapsed_s,
              static_cast<long long>(stats.batches), stats.mean_batch_size());
  std::printf("latency: p50 %.0f us, p99 %.0f us, p99.9 %.0f us (max %.0f)\n",
              stats.latency.p50_us, stats.latency.p99_us,
              stats.latency.p999_us, stats.latency.max_us);
  if (traffic.errors > 0 || traffic.degraded > 0 || !stats.reconciles()) {
    std::printf("robustness: %lld typed errors, %lld degraded-served, "
                "%lld queue-full, %lld deadline-shed, %lld backend-failed "
                "(counters %s)\n",
                static_cast<long long>(traffic.errors),
                static_cast<long long>(stats.degraded),
                static_cast<long long>(stats.rejected_queue_full),
                static_cast<long long>(stats.shed_deadline),
                static_cast<long long>(stats.backend_failed),
                stats.reconciles() ? "reconcile" : "DO NOT RECONCILE");
  }
  std::printf("accuracy: exact %.2f%%, designed %.2f%% (drop %+.2f pp), "
              "emulated %.2f%% (drop %+.2f pp)\n",
              exact_acc * 100.0, designed_acc * 100.0,
              (designed_acc - exact_acc) * 100.0, emulated_acc * 100.0,
              (emulated_acc - exact_acc) * 100.0);
  std::printf("exact-vs-designed prediction agreement: %.2f%%\n", agreement * 100.0);
  std::printf("exact-vs-emulated prediction agreement: %.2f%% "
              "(noise model vs behavioral ground truth: %+.2f pp)\n",
              emu_agreement * 100.0, (emulated_acc - designed_acc) * 100.0);

  // ---- Attacked evaluation mode (Step-8 serving surface): re-drive every
  // variant with perturbed inputs through a fresh, not-yet-started server
  // on the same registry (pinned arrival order => worker-count-independent
  // predictions; see serve/attack_eval.hpp).
  const std::string attack_spec = args.get("--attack", smoke ? "fgsm:eps=0.05" : "");
  bool attacked_ok = true;
  if (!attack_spec.empty()) {
    const serve::ParsedAttack parsed = serve::parse_attack_spec(attack_spec);
    if (!parsed.ok()) {
      std::fprintf(stderr, "bad --attack spec: %s: %s\n",
                   serve::serve_error_name(parsed.error.code),
                   parsed.error.detail.c_str());
      return 2;
    }
    std::printf("\n--- attacked evaluation (%s) ---\n", parsed.spec.key().c_str());
    const struct {
      const char* variant;
      double clean_acc;
    } waves[] = {{serve::kVariantExact, exact_acc},
                 {serve::kVariantDesigned, designed_acc},
                 {serve::kVariantEmulated, emulated_acc}};
    for (const auto& wave : waves) {
      serve::InferenceServer attacked_server(*registry, sc);
      serve::AttackedEvalConfig ac;
      ac.variant = wave.variant;
      ac.spec_text = attack_spec;
      const serve::AttackedEvalReport rep = serve::run_attacked_eval(
          attacked_server, *registry, ds.test_x, ds.test_y, ac);
      attacked_server.shutdown();
      if (!rep.ok()) {
        std::printf("  %-9s refused: %s (%s)\n", wave.variant,
                    serve::serve_error_name(rep.error.code), rep.error.detail.c_str());
        attacked_ok = false;
        continue;
      }
      std::printf("  %-9s attacked %.2f%% (clean %.2f%%, drop %+.2f pp, "
                  "%lld request errors)\n",
                  wave.variant, rep.accuracy * 100.0, wave.clean_acc * 100.0,
                  (rep.accuracy - wave.clean_acc) * 100.0,
                  static_cast<long long>(rep.request_errors));
      attacked_ok = attacked_ok && rep.request_errors == 0 &&
                    rep.labels.size() == static_cast<std::size_t>(test_n);
    }
  }

  bool obs_ok = true;
  if (!trace_out.empty()) obs_ok = obs::trace_write_chrome(trace_out) && obs_ok;
  if (!metrics_out.empty())
    obs_ok = obs::Registry::instance().write_text(metrics_out) && obs_ok;

  if (smoke) {
    // The emulated variant's *accuracy* is not gated here: behavioral
    // execution of aggressive Step-6 components can legitimately diverge
    // from the noise model that selected them — quantifying that gap is
    // Step 7's job (core::cross_validate_design), and the emulated path's
    // correctness is pinned bitwise by tests/test_backend.cpp. The gate
    // checks the serving machinery: every wave served, designed variant
    // agreeing with exact.
    const bool ok = stats.requests == 3 * test_n && agreement >= 0.5 &&
                    stats.mean_batch_size() >= 1.0 && attacked_ok && obs_ok;
    std::printf("\nsmoke gate (all clean + attacked waves served, designed "
                "agreement >= 50%%): %s\n",
                ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
  }
  return obs_ok ? 0 : 1;
}

void usage() {
  std::puts(
      "usage: redcane_serve [--smoke] [--manifest PATH] [--model capsnet|deepcaps]\n"
      "                     [--dataset mnist|fashion|cifar10|svhn] [--hw N]\n"
      "                     [--epochs N] [--train N] [--test N] [--tolerance PP]\n"
      "                     [--workers N] [--batch N] [--delay-us N] [--out PREFIX]\n"
      "                     [--data-dir DIR] [--faults SPEC] [--attack SPEC]\n"
      "                     [--trace-out PATH] [--metrics-out PATH]\n"
      "  --faults (or env REDCANE_FAULTS) arms deterministic fault injection;\n"
      "  SPEC is e.g. \"seed=7,stall=0.1,backend=0.05\" (see serve/fault.hpp)\n"
      "  --attack runs an attacked evaluation wave per variant; SPEC is e.g.\n"
      "  \"fgsm:eps=0.1\", \"pgd:eps=0.1,steps=5\", \"rotate:deg=15\" (attack/attack.hpp)");
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  if (args.has("--help") || args.has("-h")) {
    usage();
    return 2;
  }
  return run(args);
}
