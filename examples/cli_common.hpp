// Shared helpers of the example CLIs (redcane_cli, redcane_serve): the
// minimal --flag value parser and the dataset-name mapping. Header-only so
// the examples/*.cpp -> one-binary-each build rule stays untouched.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "data/idx.hpp"
#include "data/synthetic.hpp"

namespace redcane::examples {

/// Minimal --flag value parser over argv.
class Args {
 public:
  Args(int argc, char** argv) : argc_(argc), argv_(argv) {}

  /// True when `flag` appears anywhere in argv (value-less switches).
  [[nodiscard]] bool has(const std::string& flag) const {
    for (int i = 0; i < argc_; ++i) {
      if (flag == argv_[i]) return true;
    }
    return false;
  }

  /// Value following `flag`, or `fallback` when absent.
  [[nodiscard]] std::string get(const std::string& flag, const std::string& fallback) const {
    for (int i = 0; i + 1 < argc_; ++i) {
      if (flag == argv_[i]) return argv_[i + 1];
    }
    return fallback;
  }

  /// Numeric value following `flag`, or `fallback` when absent.
  [[nodiscard]] double get_num(const std::string& flag, double fallback) const {
    const std::string v = get(flag, "");
    return v.empty() ? fallback : std::atof(v.c_str());
  }

 private:
  int argc_;
  char** argv_;
};

/// Dataset name -> kind; exits with usage message on an unknown name.
inline data::DatasetKind dataset_kind_of(const std::string& name) {
  if (name == "mnist") return data::DatasetKind::kMnist;
  if (name == "fashion") return data::DatasetKind::kFashionMnist;
  if (name == "cifar10") return data::DatasetKind::kCifar10;
  if (name == "svhn") return data::DatasetKind::kSvhn;
  std::fprintf(stderr, "unknown dataset '%s' (mnist|fashion|cifar10|svhn)\n", name.c_str());
  std::exit(2);
}

/// Benchmark dataset honoring --data-dir: with the flag set and the
/// dataset MNIST, real IDX files are loaded from that directory
/// (data::load_mnist falls back to synthetic with a warning when they are
/// absent). Other datasets have no offline archive format wired up yet and
/// always use the synthetic stand-ins.
inline data::Dataset load_cli_dataset(const Args& args, data::DatasetKind kind,
                                      std::int64_t hw, std::int64_t train_n,
                                      std::int64_t test_n) {
  const std::string dir = args.get("--data-dir", "");
  if (!dir.empty()) {
    if (kind == data::DatasetKind::kMnist) {
      return data::load_mnist(dir, hw, train_n, test_n);
    }
    std::fprintf(stderr,
                 "--data-dir only loads mnist IDX files; using the synthetic %s\n",
                 data::dataset_kind_name(kind));
  }
  return data::make_benchmark(kind, hw, train_n, test_n);
}

}  // namespace redcane::examples
