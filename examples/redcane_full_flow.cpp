// The complete 6-step ReD-CaNe methodology on a CapsNet/MNIST benchmark:
// group extraction, group-wise analysis, marking, layer-wise drill-down,
// and approximate-component selection — ending with the printed design of
// the approximate CapsNet (the paper's Fig. 7 output).
//
//   ./redcane_full_flow
#include <cstdio>

#include "capsnet/capsnet_model.hpp"
#include "capsnet/trainer.hpp"
#include "core/methodology.hpp"
#include "core/report.hpp"
#include "data/synthetic.hpp"

using namespace redcane;

int main() {
  const data::Dataset ds =
      data::make_benchmark(data::DatasetKind::kMnist, 28, /*train=*/1000, /*test=*/250);

  Rng rng(11);
  capsnet::CapsNetModel model(capsnet::CapsNetConfig::tiny(), rng);

  std::printf("training %s on %s...\n", model.name().c_str(), ds.name.c_str());
  capsnet::TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 25;
  tc.lr = 2e-3;
  capsnet::train(model, ds.train_x, ds.train_y, tc);

  // Run the methodology with the paper's NM grid.
  core::MethodologyConfig mc;
  mc.resilience.seed = 2020;
  mc.profile_chain_length = 81;  // CapsNet uses 9x9 kernels.
  const core::MethodologyResult result =
      core::run_redcane(model, ds.test_x, ds.test_y, ds.name, mc);

  std::printf("%s", core::render_report(result).c_str());
  return 0;
}
