// The complete ReD-CaNe methodology on a CapsNet/MNIST benchmark: group
// extraction, group-wise analysis, marking, layer-wise drill-down,
// approximate-component selection (the paper's Fig. 7 output), and the
// repo's Step 7 — noise-model cross-validation, where every selection is
// re-executed through full behavioral emulation and compared against the
// noise model that designed it — and Step 8, robustness scenarios crossing
// adversarial/affine input perturbations with the approximation axes.
//
//   ./redcane_full_flow [--data-dir DIR]
#include <cstdio>

#include "capsnet/capsnet_model.hpp"
#include "capsnet/trainer.hpp"
#include "cli_common.hpp"
#include "core/export.hpp"
#include "core/methodology.hpp"
#include "core/report.hpp"
#include "data/synthetic.hpp"

using namespace redcane;

int main(int argc, char** argv) {
  const examples::Args args(argc, argv);
  const data::Dataset ds = examples::load_cli_dataset(
      args, data::DatasetKind::kMnist, 28, /*train=*/1000, /*test=*/250);

  Rng rng(11);
  capsnet::CapsNetModel model(capsnet::CapsNetConfig::tiny(), rng);

  std::printf("training %s on %s...\n", model.name().c_str(), ds.name.c_str());
  capsnet::TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 25;
  tc.lr = 2e-3;
  capsnet::train(model, ds.train_x, ds.train_y, tc);

  // Run the methodology with the paper's NM grid.
  core::MethodologyConfig mc;
  mc.resilience.seed = 2020;
  mc.profile_chain_length = 81;  // CapsNet uses 9x9 kernels.
  core::MethodologyResult result =
      core::run_redcane(model, ds.test_x, ds.test_y, ds.name, mc);

  // Step 7: cross-validate the design's noise model against ground-truth
  // behavioral emulation of every selected component.
  std::printf("cross-validating the design (noise model vs emulation)...\n");
  core::CrossValidateConfig cv;
  cv.seed = mc.resilience.seed;
  result.cross_validation =
      core::cross_validate_design(model, ds.test_x, ds.test_y, result, cv);
  result.has_cross_validation = true;

  // Step 8: does approximation mask or amplify adversarial/affine
  // fragility? Small FGSM + rotation grids over a reduced NM axis, plus an
  // emulated grid with the first MAC selection's component.
  std::printf("running Step-8 robustness scenarios (attack x approximation)...\n");
  core::RobustnessConfig rc;
  {
    attack::Scenario fgsm;
    fgsm.kind = attack::AttackKind::kFgsm;
    fgsm.severities = {0.05, 0.1};
    attack::Scenario rotate;
    rotate.kind = attack::AttackKind::kRotate;
    rotate.severities = {10.0, 25.0};
    rc.scenarios = {fgsm, rotate};
  }
  for (const core::SiteSelection& s : result.selections) {
    if (s.site.kind == capsnet::OpKind::kMacOutput && s.component != nullptr) {
      rc.emulated_components = {s.component->info().name};
      break;
    }
  }
  core::ResilienceConfig rcfg = mc.resilience;
  rcfg.sweep.nms = {0.1, 0.05, 0.01, 0.0};
  result.robustness = core::analyze_robustness(model, ds.test_x, ds.test_y, rc, rcfg);
  result.has_robustness = true;

  std::printf("%s", core::render_report(result).c_str());
  if (core::write_text_file("redcane_full_flow.json", core::result_to_json(result))) {
    std::printf("wrote redcane_full_flow.json\n");
  }
  return 0;
}
