// Distributed sweep launcher: one binary, three roles.
//
//   redcane_dist --coordinator [--addr A] [--journal PATH] [--resume]
//                [--verify] [--profile quick|full]
//                [--trace-out PATH] [--metrics-out PATH]
//   redcane_dist --worker --addr A [--name N] [--profile quick|full]
//   redcane_dist --local [--profile quick|full]
//
// The coordinator shards the standard job (dist/job) across however many
// workers connect, journals every completed shard, and — with --verify —
// re-runs the whole job in-process and exits nonzero unless the
// distributed grids are bitwise identical. Workers rebuild the same
// model/dataset from the profile recipe and serve shards until shut
// down. --local skips sockets entirely (the degradation path, run
// directly).
//
// Environment (flags win over environment):
//   REDCANE_DIST_ADDR          default for --addr
//   REDCANE_DIST_JOURNAL       default for --journal
//   REDCANE_DIST_HEARTBEAT_MS  coordinator liveness deadline [ms]
//   REDCANE_DIST_RETRY_BUDGET  max reassignments per shard
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "cli_common.hpp"
#include "core/sweep_plan.hpp"
#include "dist/coordinator.hpp"
#include "dist/job.hpp"
#include "dist/worker.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/fault.hpp"

namespace {

using namespace redcane;

std::string env_or(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' ? v : fallback;
}

void print_grids(const dist::JobGrids& grids) {
  for (const core::ResilienceCurve& c : grids.curves) {
    std::printf("  curve %-22s", c.label.c_str());
    for (double d : c.drop_pct) std::printf(" %7.3f", d);
    std::printf("\n");
  }
  for (const core::RobustnessGrid& g : grids.grids) {
    std::printf("  grid %s/%s:", g.scenario.c_str(), g.backend.c_str());
    for (double a : g.accuracy) std::printf(" %.4f", a);
    std::printf("\n");
  }
}

void print_stats(const dist::DistStats& s, const dist::JournalStats& j) {
  std::printf(
      "  shards=%lld assigned=%lld ok=%lld dup=%lld late=%lld stolen=%lld "
      "lost=%lld cancelled=%lld requeues=%lld failed=%lld dropped=%lld "
      "local=%lld resumed=%lld workers=%lld refused=%lld corrupt=%lld "
      "heartbeats=%lld degraded=%d reconciles=%d\n",
      static_cast<long long>(s.shards_total), static_cast<long long>(s.assigned),
      static_cast<long long>(s.result_ok), static_cast<long long>(s.result_dup),
      static_cast<long long>(s.late_results), static_cast<long long>(s.stolen),
      static_cast<long long>(s.lost), static_cast<long long>(s.cancelled),
      static_cast<long long>(s.requeues), static_cast<long long>(s.failed_permanent),
      static_cast<long long>(s.dropped_completed),
      static_cast<long long>(s.local_completed),
      static_cast<long long>(s.journal_resumed),
      static_cast<long long>(s.workers_seen),
      static_cast<long long>(s.workers_refused),
      static_cast<long long>(s.corrupt_frames), static_cast<long long>(s.heartbeats),
      s.degraded ? 1 : 0, s.reconciles() ? 1 : 0);
  // Liveness economics: how much churn fault recovery cost, and what the
  // heartbeat round trip looked like (worker-measured, see dist/wire.hpp).
  std::printf("  liveness: steals=%lld retries=%lld", static_cast<long long>(s.stolen),
              static_cast<long long>(s.requeues));
  if (s.rtt_samples > 0) {
    std::printf(" | heartbeat rtt: mean=%.0f us min=%lld max=%lld (%lld samples)",
                static_cast<double>(s.rtt_sum_us) / static_cast<double>(s.rtt_samples),
                static_cast<long long>(s.rtt_min_us),
                static_cast<long long>(s.rtt_max_us),
                static_cast<long long>(s.rtt_samples));
  }
  std::printf("\n");
  if (j.existed || j.records_appended > 0) {
    std::printf("  journal: loaded=%lld appended=%lld torn_bytes=%lld\n",
                static_cast<long long>(j.records_loaded),
                static_cast<long long>(j.records_appended),
                static_cast<long long>(j.torn_bytes_truncated));
  }
}

int run_coordinator(const examples::Args& args, const std::string& profile,
                    const std::string& addr) {
  dist::StandardJob job = dist::make_standard_job(profile);

  dist::CoordinatorConfig cfg;
  cfg.addr = addr;
  cfg.job_hash = job.job_hash;
  cfg.heartbeat_deadline_ms = static_cast<std::int64_t>(args.get_num(
      "--heartbeat-ms", std::atof(env_or("REDCANE_DIST_HEARTBEAT_MS", "1000").c_str())));
  cfg.backoff.budget = static_cast<int>(args.get_num(
      "--retry-budget", std::atof(env_or("REDCANE_DIST_RETRY_BUDGET", "4").c_str())));
  cfg.journal_path = args.get("--journal", env_or("REDCANE_DIST_JOURNAL", ""));
  if (args.has("--resume") && cfg.journal_path.empty()) {
    std::fprintf(stderr, "--resume needs --journal (or REDCANE_DIST_JOURNAL)\n");
    return 2;
  }
  if (!args.has("--resume") && !cfg.journal_path.empty()) {
    std::remove(cfg.journal_path.c_str());  // Fresh run, fresh journal.
  }

  core::SweepEngine engine(*job.model, job.dataset.test_x, job.dataset.test_y,
                           dist::job_engine_config(job, /*threads=*/0));
  dist::Coordinator coordinator(
      cfg, job.shards,
      [&engine](const core::SweepShard& s) { return core::run_shard(engine, s); });
  {
    std::string error;
    if (!coordinator.listen(&error)) {
      std::fprintf(stderr, "listen failed: %s\n", error.c_str());
      return 1;
    }
  }
  std::printf("[dist] coordinator on %s (job %016llx, %zu shards)\n",
              coordinator.bound_addr().c_str(),
              static_cast<unsigned long long>(job.job_hash), job.shards.size());

  const dist::CoordinatorResult result = coordinator.run();
  print_stats(result.stats, result.journal);
  if (!result.complete) {
    std::fprintf(stderr, "[dist] incomplete: %s\n", result.error.c_str());
    return 1;
  }
  if (!result.stats.reconciles()) {
    std::fprintf(stderr, "[dist] shard accounting does not reconcile\n");
    return 1;
  }
  const dist::JobGrids grids = dist::assemble_job(job, result.outcomes);
  print_grids(grids);

  if (args.has("--verify")) {
    std::printf("[dist] verifying against the in-process engine...\n");
    const dist::JobGrids reference = dist::run_job_in_process(job);
    if (!dist::grids_identical(grids, reference)) {
      std::fprintf(stderr, "[dist] VERIFY FAILED: grids differ from in-process run\n");
      return 1;
    }
    std::printf("[dist] verify ok: bitwise identical to the in-process run\n");
  }
  return 0;
}

int run_worker(const examples::Args& args, const std::string& profile,
               const std::string& addr) {
  dist::StandardJob job = dist::make_standard_job(profile);
  core::SweepEngine engine(*job.model, job.dataset.test_x, job.dataset.test_y,
                           dist::job_engine_config(job, /*threads=*/1));
  dist::WorkerConfig cfg;
  cfg.addr = addr;
  cfg.name = args.get("--name", "worker");
  cfg.job_hash = job.job_hash;
  const dist::WorkerStats stats = dist::run_worker(engine, cfg);
  std::printf("[dist] worker %s: shards=%llu heartbeats=%llu%s%s\n",
              cfg.name.c_str(), static_cast<unsigned long long>(stats.shards_done),
              static_cast<unsigned long long>(stats.heartbeats_sent),
              stats.error.empty() ? "" : " error=", stats.error.c_str());
  return stats.handshake_ok && stats.error.empty() ? 0 : 1;
}

int run_local(const std::string& profile) {
  dist::StandardJob job = dist::make_standard_job(profile);
  const dist::JobGrids grids = dist::run_job_in_process(job);
  print_grids(grids);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  examples::Args args(argc, argv);
  const std::string profile = args.get("--profile", "quick");
  const std::string addr =
      args.get("--addr", env_or("REDCANE_DIST_ADDR", "tcp:127.0.0.1:0"));

  // Chaos knobs (tests/CI): arm the process-wide fault plan from the env.
  const char* fault_spec = std::getenv("REDCANE_FAULTS");
  std::unique_ptr<redcane::serve::fault::ScopedFaultPlan> faults;
  if (fault_spec != nullptr && fault_spec[0] != '\0') {
    redcane::serve::fault::FaultConfig fc;
    if (!redcane::serve::fault::parse_spec(fault_spec, fc)) {
      std::fprintf(stderr, "bad REDCANE_FAULTS spec '%s'\n", fault_spec);
      return 2;
    }
    faults = std::make_unique<redcane::serve::fault::ScopedFaultPlan>(fc);
  }

  // Observability sinks (flags; REDCANE_TRACE / REDCANE_METRICS work too
  // via the library's env arming). --trace-out on the coordinator captures
  // the merged timeline: local spans plus worker spans reconstructed from
  // Result frames.
  const std::string trace_out = args.get("--trace-out", "");
  const std::string metrics_out = args.get("--metrics-out", "");
  if (!trace_out.empty()) redcane::obs::trace_arm(true);

  int rc = 2;
  if (args.has("--coordinator")) {
    rc = run_coordinator(args, profile, addr);
  } else if (args.has("--worker")) {
    rc = run_worker(args, profile, addr);
  } else if (args.has("--local")) {
    rc = run_local(profile);
  } else {
    std::fprintf(stderr,
                 "usage: redcane_dist --coordinator|--worker|--local [--addr A] "
                 "[--profile quick|full] [--journal PATH] [--resume] [--verify] "
                 "[--name N] [--heartbeat-ms N] [--retry-budget N] "
                 "[--trace-out PATH] [--metrics-out PATH]\n");
    return 2;
  }
  if (!trace_out.empty() && !redcane::obs::trace_write_chrome(trace_out)) rc = 1;
  if (!metrics_out.empty() &&
      !redcane::obs::Registry::instance().write_text(metrics_out))
    rc = 1;
  return rc;
}
