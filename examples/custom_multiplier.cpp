// Extending the component library: define your own behavioral approximate
// multiplier, profile its error distribution, and see whether ReD-CaNe's
// Step-6 selector would ever pick it.
//
// The library's factories and the Multiplier interface are public API —
// a downstream user adds a component by subclassing Multiplier; nothing
// in the profiler or selector is registry-specific.
//
//   ./custom_multiplier
#include <cstdio>

#include "approx/error_profile.hpp"
#include "approx/library.hpp"
#include "core/selection.hpp"

using namespace redcane;

namespace {

/// Example custom design: an "OR-of-shifts" multiplier that approximates
/// a * b by OR-ing the shifted multiplicand for each set multiplier bit —
/// replacing the adder tree with wired ORs (very cheap, very wrong for
/// dense operands).
class OrOfShiftsMultiplier final : public approx::Multiplier {
 public:
  OrOfShiftsMultiplier()
      : approx::Multiplier({.name = "user_or_shifts",
                            .family = "user",
                            .param = 0,
                            .paper_analog = "",
                            .power_uw = 45.0,
                            .area_um2 = 150.0}) {}

  std::uint32_t multiply(std::uint8_t a, std::uint8_t b) const override {
    std::uint32_t acc = 0;
    for (int i = 0; i < 8; ++i) {
      if ((b >> i) & 1U) acc |= static_cast<std::uint32_t>(a) << i;
    }
    return acc;
  }
};

}  // namespace

int main() {
  OrOfShiftsMultiplier custom;

  std::printf("profiling %s (claimed %.0f uW, %.0f um2)...\n\n",
              custom.info().name.c_str(), custom.info().power_uw,
              custom.info().area_um2);

  for (int chain : {1, 9, 81}) {
    approx::ProfileConfig cfg;
    cfg.samples = 50000;
    cfg.chain_length = chain;
    const approx::ErrorProfile p =
        approx::profile_multiplier(custom, approx::InputDistribution::uniform(), cfg);
    std::printf("chain %2d: mean %+9.1f  std %9.1f  NM %.5f  NA %+.5f  %s\n", chain,
                p.error_moments.mean, p.error_moments.stddev, p.nm, p.na,
                p.gaussian_like ? "gaussian-like" : "NOT gaussian-like");
  }

  // Would Step 6 ever select it? Compare against the stock library at a
  // generous tolerable-NM budget.
  approx::ProfileConfig cfg;
  cfg.samples = 50000;
  cfg.chain_length = 9;
  const approx::ErrorProfile p =
      approx::profile_multiplier(custom, approx::InputDistribution::uniform(), cfg);

  auto profiled = core::profile_library(approx::InputDistribution::uniform(), 9, 20000, 3);
  profiled.push_back({&custom, p.nm, p.na, p.gaussian_like});

  std::printf("\n%-10s %-20s %-10s\n", "budget NM", "selected component", "power [uW]");
  for (double budget : {0.001, 0.01, 0.05, 0.2}) {
    const approx::Multiplier* pick = core::select_component(profiled, budget);
    std::printf("%-10.3f %-20s %-10.0f%s\n", budget, pick->info().name.c_str(),
                pick->info().power_uw,
                pick == &custom ? "   <- our custom component!" : "");
  }

  std::printf("\nThe OR-of-shifts design always *underestimates* (dropped carries) "
              "with a large negative bias, so despite its tiny power it only wins "
              "at very permissive budgets — exactly the trade-off Table IV's "
              "YX7/QKX rows illustrate.\n");
  return 0;
}
