// Quickstart: train a small CapsNet on a synthetic MNIST stand-in, then
// watch its accuracy degrade as approximation noise is injected into the
// MAC outputs — the core loop of the ReD-CaNe methodology in ~60 lines.
//
//   ./quickstart
#include <cstdio>

#include "capsnet/capsnet_model.hpp"
#include "capsnet/trainer.hpp"
#include "data/synthetic.hpp"
#include "noise/injector.hpp"

using namespace redcane;

int main() {
  // 1. Data: a deterministic synthetic MNIST-like dataset (28x28x1).
  const data::Dataset ds =
      data::make_benchmark(data::DatasetKind::kMnist, /*hw=*/28, /*train=*/800,
                           /*test=*/200);
  std::printf("dataset: %s\n", ds.summary().c_str());

  // 2. Model: the CapsNet topology of Sabour et al. at the tiny profile.
  Rng rng(7);
  capsnet::CapsNetModel model(capsnet::CapsNetConfig::tiny(), rng);

  // 3. Train with Adam on margin loss.
  capsnet::TrainConfig tc;
  tc.epochs = 6;
  tc.batch_size = 25;
  tc.lr = 2e-3;
  tc.on_epoch = [](int epoch, double loss, double acc) {
    std::printf("epoch %d: loss %.4f, train accuracy %.1f%%\n", epoch, loss, acc * 100.0);
  };
  capsnet::train(model, ds.train_x, ds.train_y, tc);

  const double clean = capsnet::evaluate(model, ds.test_x, ds.test_y);
  std::printf("\nclean test accuracy: %.1f%%\n\n", clean * 100.0);

  // 4. Inject Gaussian approximation noise (paper Eq. 3-4) into all MAC
  //    outputs and watch the accuracy drop grow with the noise magnitude.
  std::printf("%-10s %12s %14s\n", "NM", "accuracy", "drop");
  for (double nm : {0.001, 0.01, 0.05, 0.1, 0.5}) {
    noise::GaussianInjector injector(
        {noise::group_rule(capsnet::OpKind::kMacOutput, noise::NoiseSpec{nm, 0.0})},
        /*seed=*/42);
    const double noisy = capsnet::evaluate(model, ds.test_x, ds.test_y, &injector);
    std::printf("%-10.3f %11.1f%% %+13.1f%%\n", nm, noisy * 100.0,
                (noisy - clean) * 100.0);
  }
  std::printf("\nRule of thumb from the paper: MAC outputs stop tolerating noise "
              "around NM ~ 0.01; routing coefficients tolerate 10x more.\n");
  return 0;
}
